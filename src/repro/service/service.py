"""Solve-as-a-service: coalesce small requests into the large-M regime.

Every benchmark in this repo agrees with the paper's Table III: the
large-M ``k = 0`` route is the fastest thing the engine does, yet real
PDE traffic (ADI sweeps, spline fits, per-frame physics) arrives as
*many small* compatible batches.  :class:`SolveService` is the front
door that turns one traffic shape into the other:

``submit`` → **coalesce window** → **one engine dispatch** → **scatter**

Concurrent ``submit`` calls are validated into per-fragment
:class:`~repro.backends.request.SolveRequest` objects, grouped by
compatibility (same ``N``/dtype/system descriptor/periodic flag and the
same plan-shaping options), and concatenated along the batch (``M``)
axis into **one** request per group — flushed when the group reaches
``max_batch_rows`` or when the oldest fragment has waited
``max_wait_us``.  The coalesced request dispatches through the backend
registry exactly like ``repro.solve_batch`` (the adaptive router's
``observe`` hook sees the *aggregate* route), and each caller receives
its row slice of the result.

**Bitwise contract.**  Grouped requests that leave ``k`` unset are
pinned to ``k = 0`` — the large-M fast path — *before* dispatch, so the
frozen transition never depends on how traffic happened to coalesce:
any partition of a workload into service submissions returns bits
identical to the monolithic ``k = 0`` solve (every solver operation is
elementwise along the batch axis; the same argument that makes
``workers=`` sharding bitwise-safe).  Callers that pin ``k`` (or any
hybrid plan option) group among themselves under those exact options.
Requests whose auto-``k`` would be ambiguous under coalescing (unset
``k`` with hybrid-only options like ``fuse=True``) are passed through
solo, never grouped.

**Shared factorizations.**  ``fingerprint=True`` submissions are
digest-grouped: fragments carrying the *same coefficient digest* (a
time-stepping ensemble solving one matrix) skip concatenating their
coefficients entirely — the service fetches the fragment-level
``k = 0`` factorization from the engine's cache once, tiles it along
the batch axis, and **binds a session** for the aggregate RHS-only
shape.  Repeat windows of the same digest group (the steady state of a
time-stepping ensemble) re-enter the bound session: per dispatch the
service concatenates the right-hand sides and calls ``step_once`` —
no request rebuild, no registry negotiation, no factorization-cache
round trip.  The sweep's operations are elementwise along ``M``, so
the tiled sweep is bitwise identical to each caller's solo prepared
solve.

**Admission control.**  The service bounds *admitted-but-undelivered
rows* (``max_pending_rows``); past the bound, ``submit`` sheds the
request immediately with :class:`ServiceOverloaded` instead of growing
an unbounded queue — callers see a typed, retryable error while the
backlog drains.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.backends.registry import BackendRegistry, default_registry
from repro.backends.request import SolveRequest
from repro.backends.trace import record_trace
from repro.engine.prepared import ThomasRhsFactorization, coefficient_fingerprint
from repro.service.stats import ServiceStats

__all__ = ["ServiceConfig", "ServiceOverloaded", "SolveService"]


class ServiceOverloaded(RuntimeError):
    """The service shed a request: the pending-row bound is full.

    Raised *synchronously* by ``submit`` — the request was never
    queued, so the caller may retry after backing off.  Carries
    ``pending_rows`` / ``max_pending_rows`` for logging.
    """

    def __init__(self, pending_rows: int, max_pending_rows: int, rows: int):
        self.pending_rows = pending_rows
        self.max_pending_rows = max_pending_rows
        self.rows = rows
        super().__init__(
            f"service overloaded: {pending_rows} rows pending "
            f"(+{rows} requested) exceeds max_pending_rows="
            f"{max_pending_rows}; retry after backoff"
        )


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs for :class:`SolveService`.

    Attributes
    ----------
    max_batch_rows:
        Flush a group as soon as its pending fragments reach this many
        batch rows — the ceiling on coalesced ``M``.
    max_wait_us:
        The coalesce window: a group flushes at latest this long after
        its *first* fragment arrived.  The latency cost of batching is
        bounded by this plus one dispatch.
    max_pending_rows:
        Admission bound on rows admitted but not yet delivered; beyond
        it ``submit`` raises :class:`ServiceOverloaded`.
    backend:
        Registry backend name every coalesced request dispatches to
        (``"auto"`` = let the router choose, the default).
    dispatch_workers:
        Threads executing coalesced batches, so the event loop never
        blocks on NumPy sweeps and independent groups overlap.
    tile_cache:
        LRU entries for digest-tiled shared factorizations (one entry
        per ``(digest, fragment count)`` actually seen) — and,
        separately, for the bound sessions serving repeat digest
        windows.
    """

    max_batch_rows: int = 2048
    max_wait_us: float = 500.0
    max_pending_rows: int = 65536
    backend: str = "auto"
    dispatch_workers: int = 2
    tile_cache: int = 16

    def __post_init__(self):
        if self.max_batch_rows < 1:
            raise ValueError(
                f"max_batch_rows must be >= 1, got {self.max_batch_rows}"
            )
        if self.max_wait_us < 0.0:
            raise ValueError(
                f"max_wait_us must be >= 0, got {self.max_wait_us}"
            )
        if self.max_pending_rows < 1:
            raise ValueError(
                f"max_pending_rows must be >= 1, got {self.max_pending_rows}"
            )
        if self.dispatch_workers < 1:
            raise ValueError(
                f"dispatch_workers must be >= 1, got {self.dispatch_workers}"
            )
        if self.tile_cache < 1:
            raise ValueError(
                f"tile_cache must be >= 1, got {self.tile_cache}"
            )


class _Pending:
    """One admitted fragment awaiting its slice of a coalesced result."""

    __slots__ = ("request", "future", "tenant", "t_submit")

    def __init__(self, request, future, tenant, t_submit):
        self.request = request
        self.future = future
        self.tenant = tenant
        self.t_submit = t_submit


class _Bucket:
    """The pending fragments of one compatibility group."""

    __slots__ = ("key", "items", "rows", "timer", "digest", "solo")

    def __init__(self, key, digest, solo):
        self.key = key
        self.items: list = []
        self.rows = 0
        self.timer = None
        self.digest = digest
        self.solo = solo


#: group-key sentinel counter for solo (never-coalesced) requests
_solo_counter = iter(range(1, 1 << 62)).__next__


class SolveService:
    """Async batch-aggregation front end over the solve spine.

    Create one per event loop (it binds to the running loop on first
    use) and share it across tasks::

        service = SolveService()
        x = await service.submit(a, b, c, d)          # (M, N) fragment
        await service.close()

    Synchronous callers use
    :class:`~repro.service.sync.SyncSolveClient`, which owns a
    background event loop and forwards into ``submit``.

    Parameters
    ----------
    config:
        A :class:`ServiceConfig` (defaults are sized for small-request
        traffic against the process-wide engine).
    registry:
        Backend registry coalesced requests dispatch through (default:
        the process-wide one).  The router's ``observe`` hook is fed
        the aggregate request/trace after every dispatch, so the
        adaptive model calibrates on what actually executed.
    engine:
        Engine used for the shared-factorization (digest) path; default
        is the registry's ``"engine"`` backend's engine, so cache state
        is shared with direct ``solve_batch`` callers.
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        *,
        registry: BackendRegistry | None = None,
        engine=None,
    ):
        self.config = config if config is not None else ServiceConfig()
        self._registry = registry if registry is not None else default_registry()
        self._engine = engine
        self.stats = ServiceStats()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._buckets: dict = {}
        self._pending_rows = 0
        self._inflight: set = set()
        self._closed = False
        self._executor: ThreadPoolExecutor | None = None
        self._executor_lock = threading.Lock()
        self._tiled: OrderedDict = OrderedDict()  # (digest, reps) -> fact
        self._tiled_lock = threading.Lock()
        # (digest, reps, m_frag, n, dtype, workers, check) -> bound session
        self._sessions: OrderedDict = OrderedDict()
        self._sessions_lock = threading.Lock()

    # ---- submission ---------------------------------------------------
    async def submit(
        self,
        a,
        b,
        c,
        d,
        *,
        tenant: str = "default",
        periodic: bool = False,
        check: bool = True,
        coerced: bool = False,
        out=None,
        e=None,
        f=None,
        system=None,
        **opts,
    ):
        """Solve one ``(M, N)`` fragment through the coalescing window.

        Arguments mirror ``repro.solve_batch`` (plus the banded
        ``e``/``f``/``system`` extensions); ``tenant`` attributes the
        request in :attr:`stats`.  Returns the fragment's solution —
        bitwise identical to the monolithic ``k = 0`` solve of any
        batch this fragment coalesced into.  Raises
        :class:`ServiceOverloaded` when admission control sheds the
        request.
        """
        future = self.submit_nowait(
            a, b, c, d,
            tenant=tenant, periodic=periodic, check=check, coerced=coerced,
            out=out, e=e, f=f, system=system, **opts,
        )
        return await future

    def submit_nowait(
        self,
        a,
        b,
        c,
        d,
        *,
        tenant: str = "default",
        periodic: bool = False,
        check: bool = True,
        coerced: bool = False,
        out=None,
        e=None,
        f=None,
        system=None,
        **opts,
    ) -> asyncio.Future:
        """Admit a fragment and return the future of its result.

        Must be called on the service's event loop (``submit`` is the
        awaitable veneer; :class:`~repro.service.sync.SyncSolveClient`
        is the cross-thread one).  Validation and admission happen
        synchronously, so shape errors and
        :class:`ServiceOverloaded` raise here, not inside the future.
        """
        if self._closed:
            raise RuntimeError("service is closed")
        loop = asyncio.get_running_loop()
        if self._loop is None:
            self._loop = loop
        elif loop is not self._loop:
            raise RuntimeError(
                "SolveService is bound to another event loop; create one "
                "service per loop"
            )
        request = SolveRequest.build(
            a, b, c, d,
            periodic=periodic, check=check, coerced=coerced, out=out,
            e=e, f=f, system=system, **opts,
        )
        rows = request.m
        if self._pending_rows + rows > self.config.max_pending_rows:
            self.stats.record_shed(tenant)
            raise ServiceOverloaded(
                self._pending_rows, self.config.max_pending_rows, rows
            )
        digest, key, solo = self._classify(request)
        self.stats.record_admitted(tenant, rows)
        self._pending_rows += rows
        future = loop.create_future()
        pending = _Pending(request, future, tenant, time.perf_counter())

        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = _Bucket(key, digest, solo)
            self._buckets[key] = bucket
        bucket.items.append(pending)
        bucket.rows += rows
        if solo or bucket.rows >= self.config.max_batch_rows:
            self._flush(bucket, cause="size" if not solo else "solo")
        elif bucket.timer is None:
            bucket.timer = loop.call_later(
                self.config.max_wait_us * 1e-6, self._flush_timer, bucket
            )
        return future

    def _classify(self, request: SolveRequest):
        """``(digest, group key, solo)`` for one fragment.

        Two fragments may coalesce only when every axis that shapes the
        frozen plan — and therefore the bits of the answer — agrees.
        ``fingerprint=True`` fragments additionally group by coefficient
        digest, unlocking the shared-factorization dispatch.  Fragments
        whose unset ``k`` cannot be pinned to 0 unambiguously (hybrid
        plan options present) go solo.
        """
        hybrid_opts = (
            request.fuse
            or request.n_windows != 1
            or request.subtile_scale != 1
            or request.parallelism is not None
            or request.heuristic is not None
        )
        if request.k is None and hybrid_opts:
            return None, ("solo", _solo_counter()), True
        digest = None
        if request.fingerprint is True:
            coeffs = (
                (request.e, request.a, request.b, request.c, request.f)
                if request.system.kind == "pentadiagonal"
                else (request.a, request.b, request.c)
            )
            digest = coefficient_fingerprint(*coeffs)
        key = (
            request.n,
            request.dtype,
            request.system,
            request.periodic,
            request.k,
            request.fuse,
            request.n_windows,
            request.subtile_scale,
            request.parallelism,
            id(request.heuristic) if request.heuristic is not None else None,
            request.workers,
            request.fingerprint,
            request.rtol,
            request.check,
            digest,
        )
        return digest, key, False

    # ---- flushing -----------------------------------------------------
    def _flush_timer(self, bucket: _Bucket) -> None:
        bucket.timer = None
        if self._buckets.get(bucket.key) is bucket:
            self._flush(bucket, cause="timer")

    def _flush(self, bucket: _Bucket, *, cause: str) -> None:
        """Detach ``bucket`` and hand its fragments to the executor."""
        self._buckets.pop(bucket.key, None)
        if bucket.timer is not None:
            bucket.timer.cancel()
            bucket.timer = None
        if not bucket.items:
            return
        loop = self._loop
        fut = loop.run_in_executor(
            self._dispatch_executor(), self._dispatch, bucket, cause
        )
        self._inflight.add(fut)
        fut.add_done_callback(self._inflight.discard)

    def _dispatch_executor(self) -> ThreadPoolExecutor:
        with self._executor_lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.config.dispatch_workers,
                    thread_name_prefix="repro-service",
                )
            return self._executor

    # ---- dispatch (executor threads) ---------------------------------
    def _dispatch(self, bucket: _Bucket, cause: str) -> None:
        items = bucket.items
        try:
            bound = self._shared_session(bucket)
            if bound is not None:
                session, d = bound
                outcome = self._execute_session(session, d)
                rows, shared = session.request.m, True
            else:
                request, shared = self._coalesced_request(bucket)
                outcome = self._execute(request)
                rows = request.m
            self.stats.record_dispatch(
                {p.tenant for p in items},
                rows,
                outcome.trace,
                cause=cause,
                shared=shared,
            )
            self._loop.call_soon_threadsafe(
                self._deliver, items, outcome.x, None
            )
        except BaseException as exc:  # delivered, not swallowed
            for p in items:
                self.stats.record_failed(p.tenant)
            self._loop.call_soon_threadsafe(self._deliver, items, None, exc)

    def _coalesced_request(self, bucket: _Bucket):
        """Build the one request this bucket executes as.

        Returns ``(request, shared)``; the digest-tiled RHS-only path
        lives in :meth:`_shared_session` and is tried first by
        ``_dispatch``, so ``shared`` is always ``False`` here.  Unset
        ``k`` on groupable fragments is pinned to 0 — the bitwise
        anchor of the whole tier.
        """
        items = bucket.items
        first = items[0].request
        pin_k = first.k is None and not bucket.solo
        if len(items) == 1:
            request = first.replace(k=0) if pin_k else first
            return request, False
        cat = {
            name: np.concatenate(
                [getattr(p.request, name) for p in items], axis=0
            )
            for name in ("a", "b", "c", "d")
            if getattr(first, name) is not None
        }
        e_cat = (
            np.concatenate([p.request.e for p in items], axis=0)
            if first.e is not None
            else None
        )
        f_cat = (
            np.concatenate([p.request.f for p in items], axis=0)
            if first.f is not None
            else None
        )
        request = SolveRequest(
            a=cat.get("a"),
            b=cat.get("b"),
            c=cat.get("c"),
            d=cat["d"],
            m=bucket.rows,
            n=first.n,
            dtype=first.dtype,
            periodic=first.periodic,
            fingerprint=first.fingerprint,
            rtol=first.rtol,
            workers=first.workers,
            k=0 if pin_k else first.k,
            fuse=first.fuse,
            n_windows=first.n_windows,
            subtile_scale=first.subtile_scale,
            parallelism=first.parallelism,
            heuristic=first.heuristic,
            check=first.check,
            e=e_cat,
            f=f_cat,
            system=first.system,
        )
        return request, False

    @staticmethod
    def _shared_eligible(first: SolveRequest, pin_k: bool) -> bool:
        """May this digest group run the tiled RHS-only dispatch?

        Plain tridiagonal ``k = 0`` only: that is where the stored
        :class:`ThomasRhsFactorization` is bitwise-identical to the
        cold solve, and tiling it along the batch axis is a pure
        column-block repeat.  Periodic and banded digest groups fall
        back to plain concatenation (the engine's own fingerprint cache
        still serves them at the aggregate shape).
        """
        k_eff = 0 if pin_k else first.k
        return (
            first.system.kind == "tridiagonal"
            and not first.periodic
            and k_eff == 0
        )

    def _shared_session(self, bucket: _Bucket):
        """Digest path: a bound session over the tiled factorization.

        All fragments in a digest bucket carry *identical* coefficient
        arrays (the digest hashes shape + content), so the coalesced
        elimination state is the fragment's ``(N, m)`` factorization
        repeated along the batch axis — fetched from (or built into)
        the engine's factorization cache once, tiled once, and **bound
        once**: the session holding the tiled factorization, frozen
        aggregate plan, and pinned route is LRU-cached, so every later
        window of the same digest group concatenates its right-hand
        sides and steps the existing session.  Returns ``(session, d)``
        or ``None`` when the bucket is ineligible (falls back to plain
        concatenation).
        """
        items = bucket.items
        if bucket.digest is None:
            return None
        first = items[0].request
        pin_k = first.k is None and not bucket.solo
        if not self._shared_eligible(first, pin_k):
            return None
        m_frag = first.m
        if any(p.request.m != m_frag for p in items):
            return None
        reps = len(items)
        key = (
            bucket.digest, reps, m_frag,
            first.n, first.dtype, first.workers, first.check,
        )
        with self._sessions_lock:
            session = self._sessions.get(key)
            if session is not None:
                self._sessions.move_to_end(key)
        if session is None:
            session = self._bind_shared(bucket, first, m_frag, reps)
            if session is None:
                return None
            with self._sessions_lock:
                raced = self._sessions.get(key)
                if raced is not None:
                    # another dispatch thread bound the same window
                    # shape first; keep the incumbent
                    session.close()
                    session = raced
                    self._sessions.move_to_end(key)
                else:
                    self._sessions[key] = session
                    while len(self._sessions) > self.config.tile_cache:
                        _, old = self._sessions.popitem(last=False)
                        old.close()
        d = (
            first.d
            if reps == 1
            else np.concatenate([p.request.d for p in items], axis=0)
        )
        return session, d

    def _bind_shared(self, bucket: _Bucket, first, m_frag: int, reps: int):
        """Build the bound session behind one digest-window shape.

        The RHS-only template request (no ``d`` — each window supplies
        its own) resolves through the registry like any coalesced
        dispatch, so the route decision is pinned at bind time and the
        adaptive router still sees the aggregate shape; backends
        without a native ``bind`` get the generic per-step-dispatch
        session.
        """
        engine = self._shared_engine()
        if engine is None:
            return None
        plan_frag = engine.plan_for(m_frag, first.n, np.dtype(first.dtype), k=0)
        fact, _ = engine.factorization_for(
            plan_frag, bucket.digest, first.a, first.b, first.c
        )
        if not isinstance(fact, ThomasRhsFactorization):
            return None
        tiled = self._tiled_factorization(bucket.digest, fact, reps)
        rows = m_frag * reps
        plan = engine.plan_for(rows, first.n, np.dtype(first.dtype), k=0)
        template = SolveRequest(
            a=None,
            b=None,
            c=None,
            d=None,
            m=rows,
            n=first.n,
            dtype=first.dtype,
            rhs_only=True,
            fingerprint=True,
            factorization=tiled,
            plan=plan,
            workers=first.workers,
            check=first.check,
        )
        chosen = self._registry.resolve(self.config.backend, template)
        binder = getattr(chosen, "bind", None)
        if binder is not None:
            return binder(template)
        from repro.backends.base import PerStepSession

        return PerStepSession(chosen, template)

    def _execute_session(self, session, d):
        """One window through a bound session (solve_via shape).

        The session's ``step_once`` replays the engine's one-shot
        instrumentation; the service adds what ``_execute`` adds for
        cold dispatches — decision stamp, thread-local trace, and the
        router's ``observe`` hook on the aggregate shape.
        """
        outcome = session.step_once(d)
        trace = outcome.trace
        if trace.decision is None:
            trace.decision = session.request.decision
        record_trace(trace)
        observe = getattr(self._registry.router, "observe", None)
        if observe is not None:
            observe(session.request, trace)
        return outcome

    def _shared_engine(self):
        """The engine whose factorization cache backs the digest path."""
        if self._engine is not None:
            return self._engine
        try:
            backend = self._registry.get("engine")
        except Exception:
            return None
        engine = getattr(backend, "engine", None)
        if engine is None or not hasattr(engine, "factorization_for"):
            return None
        self._engine = engine
        return engine

    def _tiled_factorization(self, digest, fact, reps: int):
        """``fact`` repeated ``reps`` × along the batch axis (LRU-cached).

        ``np.tile(arr, (1, reps))`` on the ``(N, m)`` state repeats the
        fragment's columns block-by-block — exactly the column layout
        of ``reps`` concatenated fragments.
        """
        if reps == 1:
            return fact
        key = (digest, reps)
        with self._tiled_lock:
            cached = self._tiled.get(key)
            if cached is not None:
                self._tiled.move_to_end(key)
                return cached
        tiled = ThomasRhsFactorization(
            ta=np.tile(fact.ta, (1, reps)),
            cp=np.tile(fact.cp, (1, reps)),
            denom=np.tile(fact.denom, (1, reps)),
        )
        with self._tiled_lock:
            self._tiled[key] = tiled
            self._tiled.move_to_end(key)
            while len(self._tiled) > self.config.tile_cache:
                self._tiled.popitem(last=False)
        return tiled

    def _execute(self, request: SolveRequest):
        """Registry dispatch of one coalesced request (solve_via shape).

        Mirrors :func:`repro.backends.registry.solve_via` — resolve,
        execute, stamp the decision, record the trace, and feed the
        router's ``observe`` hook with the *aggregate* request/trace so
        the adaptive model calibrates on coalesced shapes.
        """
        chosen = self._registry.resolve(self.config.backend, request)
        outcome = chosen.execute(request)
        trace = outcome.trace
        if trace.decision is None:
            trace.decision = request.decision
        record_trace(trace)
        observe = getattr(self._registry.router, "observe", None)
        if observe is not None:
            observe(request, trace)
        return outcome

    # ---- delivery (event loop) ---------------------------------------
    def _deliver(self, items, x, exc) -> None:
        now = time.perf_counter()
        lo = 0
        for p in items:
            rows = p.request.m
            self._pending_rows -= rows
            if exc is None:
                frag = x[lo : lo + rows]
                lo += rows
                dest = p.request.out
                if dest is not None:
                    if frag is not dest and frag.base is not dest:
                        np.copyto(dest, frag)
                    frag = dest
                elif frag.base is not None:
                    frag = frag.copy()  # detach from the coalesced block
                if not p.future.done():
                    p.future.set_result(frag)
                self.stats.record_delivered(p.tenant, now - p.t_submit)
            else:
                if not p.future.done():
                    p.future.set_exception(exc)

    # ---- observability ------------------------------------------------
    def last_trace(self, tenant: str = "default"):
        """The aggregate :class:`~repro.backends.trace.SolveTrace` of
        the most recent coalesced batch this tenant rode in on (the
        service-tier sibling of :func:`repro.last_trace`)."""
        return self.stats.tenant(tenant).last_trace

    def describe(self) -> dict:
        """Service + per-tenant summary (the ``serve-stats`` payload)."""
        desc = self.stats.describe()
        desc["config"] = {
            "max_batch_rows": self.config.max_batch_rows,
            "max_wait_us": self.config.max_wait_us,
            "max_pending_rows": self.config.max_pending_rows,
            "backend": self.config.backend,
            "dispatch_workers": self.config.dispatch_workers,
        }
        desc["pending_rows"] = self._pending_rows
        with self._sessions_lock:
            desc["bound_sessions"] = len(self._sessions)
        return desc

    @property
    def pending_rows(self) -> int:
        """Rows admitted but not yet delivered (the backpressure gauge)."""
        return self._pending_rows

    # ---- lifecycle ----------------------------------------------------
    async def drain(self) -> None:
        """Flush every open window and wait for in-flight dispatches."""
        for bucket in list(self._buckets.values()):
            self._flush(bucket, cause="close")
        while self._inflight:
            await asyncio.gather(*list(self._inflight), return_exceptions=True)

    async def close(self) -> None:
        """Drain, then release the dispatch executor.

        Idempotent; afterwards ``submit`` raises ``RuntimeError``.
        """
        if self._closed:
            return
        self._closed = True
        await self.drain()
        with self._executor_lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)
        with self._sessions_lock:
            sessions, self._sessions = self._sessions, OrderedDict()
        for session in sessions.values():
            session.close()

    async def __aenter__(self) -> "SolveService":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()
