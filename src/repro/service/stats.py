"""Service-tier observability: per-tenant counters, latency, traces.

Every request admitted by :class:`~repro.service.service.SolveService`
is attributed to a *tenant* (an arbitrary caller-chosen string, default
``"default"``).  The service records, per tenant and in aggregate:

* admission counters — submitted / delivered / shed requests and rows;
* end-to-end latency (submit → result delivered) in a bounded ring
  reservoir, so p50/p99 stay O(1)-memory under sustained traffic;
* the most recent aggregate :class:`~repro.backends.trace.SolveTrace`
  each tenant's requests rode in on — the service-tier sibling of
  :func:`repro.last_trace`, reachable via
  :meth:`SolveService.last_trace <repro.service.service.SolveService.last_trace>`;
* which backends executed the coalesced batches, and how large those
  batches were.

``repro serve-stats`` renders :meth:`ServiceStats.describe` as a table.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field

__all__ = ["LatencyReservoir", "ServiceStats", "TenantStats"]


class LatencyReservoir:
    """Bounded ring of latency samples with percentile queries.

    Keeps the most recent ``cap`` samples (overwriting the oldest), plus
    running count/total/max over *all* samples ever added — percentiles
    reflect recent behaviour, throughput totals reflect everything.
    """

    __slots__ = ("cap", "samples", "count", "total", "peak")

    def __init__(self, cap: int = 4096):
        if cap < 1:
            raise ValueError(f"reservoir cap must be >= 1, got {cap}")
        self.cap = cap
        self.samples: list = []
        self.count = 0
        self.total = 0.0
        self.peak = 0.0

    def add(self, seconds: float) -> None:
        """Record one end-to-end latency sample."""
        if len(self.samples) < self.cap:
            self.samples.append(seconds)
        else:
            self.samples[self.count % self.cap] = seconds
        self.count += 1
        self.total += seconds
        if seconds > self.peak:
            self.peak = seconds

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0–100) over the retained window."""
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        rank = (q / 100.0) * (len(ordered) - 1)
        lo = math.floor(rank)
        hi = math.ceil(rank)
        if lo == hi:
            return ordered[lo]
        frac = rank - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    @property
    def mean(self) -> float:
        """Mean over all samples ever added."""
        return self.total / self.count if self.count else 0.0


@dataclass
class TenantStats:
    """One tenant's ledger (also used for the all-tenants aggregate)."""

    tenant: str = "default"
    submitted: int = 0        #: requests admitted past the queue bound
    delivered: int = 0        #: requests whose result reached the caller
    shed: int = 0             #: requests rejected with ServiceOverloaded
    failed: int = 0           #: requests that raised during dispatch
    rows: int = 0             #: batch rows (M) admitted
    batches: int = 0          #: coalesced dispatches participated in
    latency: LatencyReservoir = field(default_factory=LatencyReservoir)
    backends: dict = field(default_factory=dict)  #: backend name -> count
    last_trace: object = None  #: aggregate SolveTrace of the last batch

    def describe(self) -> dict:
        """Flat summary dict (the ``serve-stats`` row for this tenant)."""
        return {
            "tenant": self.tenant,
            "submitted": self.submitted,
            "delivered": self.delivered,
            "shed": self.shed,
            "failed": self.failed,
            "rows": self.rows,
            "batches": self.batches,
            "latency_ms": {
                "p50": self.latency.percentile(50.0) * 1e3,
                "p99": self.latency.percentile(99.0) * 1e3,
                "mean": self.latency.mean * 1e3,
                "max": self.latency.peak * 1e3,
            },
            "backends": dict(self.backends),
            "last_trace": (
                self.last_trace.describe()
                if self.last_trace is not None
                else None
            ),
        }


class ServiceStats:
    """Thread-safe service-wide ledger: per-tenant + dispatch counters.

    Mutated from the event loop (admission, delivery) *and* the dispatch
    executor threads (batch completion), so every update takes the lock.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._tenants: dict = {}
        self.dispatches = 0        #: coalesced batches executed
        self.dispatched_rows = 0   #: total rows across those batches
        self.max_batch_rows = 0    #: largest coalesced batch seen
        self.size_flushes = 0      #: flushes triggered by the batch cap
        self.timer_flushes = 0     #: flushes triggered by the wait window
        self.solo_flushes = 0      #: ungroupable requests passed through
        self.close_flushes = 0     #: flushes triggered by close()/drain()
        self.shared_factorizations = 0  #: digest-tiled RHS-only dispatches

    def tenant(self, name: str) -> TenantStats:
        """The (created-on-demand) ledger for ``name``."""
        with self._lock:
            stats = self._tenants.get(name)
            if stats is None:
                stats = self._tenants[name] = TenantStats(tenant=name)
            return stats

    def tenants(self) -> list:
        """Tenant ledgers, sorted by name."""
        with self._lock:
            return [self._tenants[k] for k in sorted(self._tenants)]

    # -- recording (all called with concrete deltas, lock inside) ------
    def record_admitted(self, tenant: str, rows: int) -> None:
        with self._lock:
            t = self._tenant_locked(tenant)
            t.submitted += 1
            t.rows += rows

    def record_shed(self, tenant: str) -> None:
        with self._lock:
            self._tenant_locked(tenant).shed += 1

    def record_failed(self, tenant: str) -> None:
        with self._lock:
            self._tenant_locked(tenant).failed += 1

    def record_delivered(self, tenant: str, seconds: float) -> None:
        with self._lock:
            t = self._tenant_locked(tenant)
            t.delivered += 1
            t.latency.add(seconds)

    def record_dispatch(
        self,
        tenants,
        rows: int,
        trace,
        *,
        cause: str,
        shared: bool = False,
    ) -> None:
        """Account one coalesced dispatch to every participating tenant."""
        backend = getattr(trace, "backend", None)
        with self._lock:
            self.dispatches += 1
            self.dispatched_rows += rows
            if rows > self.max_batch_rows:
                self.max_batch_rows = rows
            if cause == "size":
                self.size_flushes += 1
            elif cause == "timer":
                self.timer_flushes += 1
            elif cause == "solo":
                self.solo_flushes += 1
            else:
                self.close_flushes += 1
            if shared:
                self.shared_factorizations += 1
            for name in tenants:
                t = self._tenant_locked(name)
                t.batches += 1
                t.last_trace = trace
                if backend is not None:
                    t.backends[backend] = t.backends.get(backend, 0) + 1

    def _tenant_locked(self, name: str) -> TenantStats:
        stats = self._tenants.get(name)
        if stats is None:
            stats = self._tenants[name] = TenantStats(tenant=name)
        return stats

    # -- reporting ------------------------------------------------------
    @property
    def mean_batch_rows(self) -> float:
        """Average coalesced batch size (rows per dispatch)."""
        return (
            self.dispatched_rows / self.dispatches if self.dispatches else 0.0
        )

    def describe(self) -> dict:
        """Service-wide summary: dispatch counters + per-tenant rows."""
        with self._lock:
            tenants = [self._tenants[k] for k in sorted(self._tenants)]
            return {
                "dispatches": self.dispatches,
                "dispatched_rows": self.dispatched_rows,
                "mean_batch_rows": self.mean_batch_rows,
                "max_batch_rows": self.max_batch_rows,
                "flushes": {
                    "size": self.size_flushes,
                    "timer": self.timer_flushes,
                    "solo": self.solo_flushes,
                    "close": self.close_flushes,
                },
                "shared_factorizations": self.shared_factorizations,
                "tenants": [t.describe() for t in tenants],
            }
