"""Thread-queue adapter: the service for synchronous callers.

:class:`SyncSolveClient` owns a private event loop on a daemon thread
and forwards blocking ``solve`` calls (or pipelined ``submit`` futures)
into a :class:`~repro.service.service.SolveService` running there.
Many caller threads sharing one client coalesce with each other exactly
like asyncio tasks do — the service cannot tell the difference::

    with SyncSolveClient() as client:
        x = client.solve(a, b, c, d)             # blocking
        futs = [client.submit(a, b, c, di) for di in ds]
        xs = [f.result() for f in futs]          # pipelined

``close()`` drains open windows, stops the loop, and joins the thread;
the context manager does it on exit.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import Future

from repro.service.service import ServiceConfig, SolveService

__all__ = ["SyncSolveClient"]


class SyncSolveClient:
    """Blocking facade over a background-loop :class:`SolveService`.

    Parameters mirror :class:`~repro.service.service.SolveService`;
    alternatively pass a prebuilt ``service`` (not yet bound to a
    loop).  ``timeout`` is the default per-call bound for :meth:`solve`
    (``None`` = wait forever).
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        *,
        registry=None,
        engine=None,
        service: SolveService | None = None,
        timeout: float | None = None,
    ):
        self.service = (
            service
            if service is not None
            else SolveService(config, registry=registry, engine=engine)
        )
        self.timeout = timeout
        self._loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-service-loop", daemon=True
        )
        self._thread.start()
        self._started.wait()
        self._closed = False

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.call_soon(self._started.set)
        self._loop.run_forever()

    # ---- calls --------------------------------------------------------
    def submit(self, a, b, c, d, **opts) -> Future:
        """Enqueue one fragment; returns a ``concurrent.futures.Future``.

        Keywords mirror :meth:`SolveService.submit
        <repro.service.service.SolveService.submit>` (``tenant=``,
        ``periodic=``, solver options...).  Admission errors
        (:class:`~repro.service.service.ServiceOverloaded`, shape
        errors) surface when the future is resolved.
        """
        if self._closed:
            raise RuntimeError("client is closed")
        return asyncio.run_coroutine_threadsafe(
            self.service.submit(a, b, c, d, **opts), self._loop
        )

    def solve(self, a, b, c, d, *, timeout: float | None = None, **opts):
        """Blocking solve through the coalescing window."""
        return self.submit(a, b, c, d, **opts).result(
            timeout if timeout is not None else self.timeout
        )

    # ---- observability -----------------------------------------------
    def last_trace(self, tenant: str = "default"):
        """Forwarded :meth:`SolveService.last_trace`."""
        return self.service.last_trace(tenant)

    def describe(self) -> dict:
        """Forwarded :meth:`SolveService.describe`."""
        return self.service.describe()

    @property
    def stats(self):
        """The underlying :class:`~repro.service.stats.ServiceStats`."""
        return self.service.stats

    # ---- lifecycle ----------------------------------------------------
    def close(self, timeout: float | None = 30.0) -> None:
        """Drain the service, stop the loop, join the thread."""
        if self._closed:
            return
        self._closed = True
        try:
            asyncio.run_coroutine_threadsafe(
                self.service.close(), self._loop
            ).result(timeout)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout)
            if not self._thread.is_alive():
                self._loop.close()

    def __enter__(self) -> "SyncSolveClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
