"""Utility layer: tridiagonal system containers, numeric helpers.

This subpackage holds the data-structure vocabulary shared by every other
part of the library:

* :class:`~repro.util.tridiag.TridiagonalSystem` — a single ``Ax = d``
  system stored as four 1-D diagonal arrays.
* :class:`~repro.util.tridiag.BatchTridiagonal` — ``M`` independent systems
  in structure-of-arrays layout (each diagonal is an ``(M, N)`` array).
* residual / condition helpers in :mod:`~repro.util.numerics`.
"""

from repro.util.tridiag import (
    BatchTridiagonal,
    TridiagonalSystem,
    as_batch,
    dense_from_diagonals,
)
from repro.util.numerics import (
    diagonal_dominance_margin,
    is_diagonally_dominant,
    max_relative_error,
    residual_norm,
)
from repro.util.pools import executor_cap

__all__ = [
    "BatchTridiagonal",
    "TridiagonalSystem",
    "as_batch",
    "dense_from_diagonals",
    "diagonal_dominance_margin",
    "executor_cap",
    "is_diagonally_dominant",
    "max_relative_error",
    "residual_norm",
]
