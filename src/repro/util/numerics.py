"""Numeric helpers: residuals, dominance checks, error metrics.

PCR and CR perform eliminations without pivoting, so the library documents
(and tests enforce) the classic sufficient condition for stability:
diagonal dominance.  The helpers here quantify how dominant a system is and
measure solution quality against references.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "residual_norm",
    "max_relative_error",
    "is_diagonally_dominant",
    "diagonal_dominance_margin",
]


def residual_norm(system, x: np.ndarray, ord: int | float = np.inf) -> float:
    """Relative residual ``‖Ax − d‖ / max(‖d‖, tiny)`` of a (batch) system.

    Works on both :class:`~repro.util.tridiag.TridiagonalSystem` and
    :class:`~repro.util.tridiag.BatchTridiagonal`; batches report the worst
    system's relative residual.
    """
    r = system.residual(np.asarray(x))
    d = system.d
    if r.ndim == 1:
        r = r[None, :]
        d = d[None, :]
    num = np.linalg.norm(r, ord=ord, axis=1)
    den = np.maximum(np.linalg.norm(d, ord=ord, axis=1), np.finfo(r.dtype).tiny)
    return float(np.max(num / den))


def max_relative_error(x: np.ndarray, x_ref: np.ndarray) -> float:
    """Worst componentwise relative error, guarding against zero reference."""
    x = np.asarray(x, dtype=np.float64)
    x_ref = np.asarray(x_ref, dtype=np.float64)
    scale = np.maximum(np.abs(x_ref), 1.0)
    return float(np.max(np.abs(x - x_ref) / scale))


def diagonal_dominance_margin(a, b, c) -> float:
    """Smallest row margin ``|b_i| − (|a_i| + |c_i|)`` over all rows/systems.

    Positive ⇒ strictly diagonally dominant; the larger, the safer the
    pivot-free eliminations of Thomas/CR/PCR are.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    c = np.asarray(c)
    return float(np.min(np.abs(b) - (np.abs(a) + np.abs(c))))


def is_diagonally_dominant(a, b, c, strict: bool = True) -> bool:
    """Whether every row satisfies ``|b_i| ≥ |a_i| + |c_i|`` (``>`` if strict)."""
    margin = diagonal_dominance_margin(a, b, c)
    return margin > 0.0 if strict else margin >= 0.0
