"""Thread-pool sizing shared by every executor in the repo.

Historically the threaded and engine backends advertised (and the
engine materialized) pools of ``max(32, os.cpu_count())`` threads —
i.e. *at least* 32 threads even on a 2-core machine, where 32 waiters
fighting over 2 cores only add scheduler pressure and memory.  The
intended semantics was a *cap*: generous enough that sharded solves
never starve, proportional to the machine, and never above 32.
"""

from __future__ import annotations

import os

__all__ = ["EXECUTOR_HARD_CAP", "EXECUTOR_PER_CPU", "executor_cap"]

#: Absolute ceiling on any engine/backend thread pool.
EXECUTOR_HARD_CAP = 32

#: Threads allowed per CPU before the cap kicks in — batch shards are
#: numpy-heavy (GIL-releasing), so modest oversubscription still helps
#: hide stage imbalance between shards.
EXECUTOR_PER_CPU = 4


def executor_cap(cpu_count: int | None = None) -> int:
    """Largest thread-pool size worth creating on this machine.

    ``min(32, 4 * cpus)``, floored at 2 so multi-worker negotiation
    (``Capabilities.max_workers > 1``) stays alive even on single-core
    hosts — two threads there cost nothing and keep the sharded code
    paths exercised.
    """
    cpus = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
    return min(EXECUTOR_HARD_CAP, max(2, EXECUTOR_PER_CPU * cpus))
