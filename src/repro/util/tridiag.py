"""Tridiagonal system containers.

Storage convention
------------------
A tridiagonal system ``A x = d`` with ``A`` an ``n × n`` matrix

.. code-block:: text

    | b0 c0                |
    | a1 b1 c1             |
    |    a2 b2 c2          |
    |        ...           |
    |          a_{n-1} b_{n-1} |

is stored as four 1-D arrays ``a, b, c, d`` of identical length ``n``:

* ``a[i]`` — sub-diagonal coefficient of row ``i`` (``a[0]`` must be 0),
* ``b[i]`` — main diagonal,
* ``c[i]`` — super-diagonal (``c[n-1]`` must be 0),
* ``d[i]`` — right-hand side.

This "padded" convention (every row owns exactly one ``(a, b, c, d)``
quadruple) is what PCR-family algorithms want: a reduction step for row
``i`` touches rows ``i±s`` uniformly and boundary rows simply carry zero
off-diagonal coefficients.  It matches the row-oriented presentation in
Section II of the paper.

Batches are stored structure-of-arrays: each diagonal of an ``M``-system
batch is an ``(M, N)`` array.  All per-row kernels then vectorize over the
leading axis, which plays the role of the GPU *thread* axis in the
simulated kernels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "TridiagonalSystem",
    "BatchTridiagonal",
    "as_batch",
    "dense_from_diagonals",
]

_ALLOWED_DTYPES = (np.float32, np.float64)


def _check_dtype(dtype: np.dtype) -> np.dtype:
    dtype = np.dtype(dtype)
    if dtype not in _ALLOWED_DTYPES:
        raise TypeError(
            f"tridiagonal solvers support float32/float64, got {dtype}"
        )
    return dtype


@dataclass
class TridiagonalSystem:
    """A single tridiagonal system ``A x = d``.

    Parameters
    ----------
    a, b, c, d:
        1-D arrays of identical length ``n`` holding the sub-, main-,
        super-diagonal and right-hand side.  ``a[0]`` and ``c[-1]`` are
        forced to zero on construction (they lie outside the matrix).

    Notes
    -----
    The arrays are converted to a common floating dtype but otherwise
    referenced, not copied, when already suitable; callers who plan to
    run an in-place algorithm should pass copies or use :meth:`copy`.
    """

    a: np.ndarray
    b: np.ndarray
    c: np.ndarray
    d: np.ndarray

    def __post_init__(self) -> None:
        arrays = [np.asarray(v) for v in (self.a, self.b, self.c, self.d)]
        dtype = _check_dtype(np.result_type(*arrays))
        arrays = [np.ascontiguousarray(v, dtype=dtype) for v in arrays]
        n = arrays[0].shape[0]
        for name, arr in zip("abcd", arrays):
            if arr.ndim != 1:
                raise ValueError(f"diagonal {name!r} must be 1-D, got {arr.ndim}-D")
            if arr.shape[0] != n:
                raise ValueError(
                    f"diagonal {name!r} has length {arr.shape[0]}, expected {n}"
                )
        if n == 0:
            raise ValueError("empty system (n == 0)")
        self.a, self.b, self.c, self.d = arrays
        # Rows outside the matrix must not contribute.
        if self.a[0] != 0.0:
            self.a = self.a.copy()
            self.a[0] = 0.0
        if self.c[-1] != 0.0:
            self.c = self.c.copy()
            self.c[-1] = 0.0

    @property
    def n(self) -> int:
        """System size (number of unknowns)."""
        return self.b.shape[0]

    @property
    def dtype(self) -> np.dtype:
        """Floating dtype of the stored diagonals."""
        return self.b.dtype

    def copy(self) -> "TridiagonalSystem":
        """Deep copy (safe to hand to in-place algorithms)."""
        return TridiagonalSystem(
            self.a.copy(), self.b.copy(), self.c.copy(), self.d.copy()
        )

    def to_dense(self) -> np.ndarray:
        """Materialize the full ``n × n`` matrix (for testing only)."""
        return dense_from_diagonals(self.a, self.b, self.c)

    def to_banded(self) -> np.ndarray:
        """Return the ``(3, n)`` banded form used by scipy ``solve_banded``."""
        ab = np.zeros((3, self.n), dtype=self.dtype)
        ab[0, 1:] = self.c[:-1]
        ab[1, :] = self.b
        ab[2, :-1] = self.a[1:]
        return ab

    def residual(self, x: np.ndarray) -> np.ndarray:
        """Return ``A x − d`` without materializing ``A``."""
        x = np.asarray(x, dtype=self.dtype)
        r = self.b * x - self.d
        r[1:] += self.a[1:] * x[:-1]
        r[:-1] += self.c[:-1] * x[1:]
        return r

    def as_batch(self) -> "BatchTridiagonal":
        """View this system as a one-element batch (shares memory)."""
        return BatchTridiagonal(
            self.a[None, :], self.b[None, :], self.c[None, :], self.d[None, :]
        )


@dataclass
class BatchTridiagonal:
    """``M`` independent tridiagonal systems of common size ``N``.

    Each diagonal is an ``(M, N)`` array (structure-of-arrays layout).
    Row ``m`` of each array is one complete system.  This is the layout
    every batched algorithm in :mod:`repro.core` consumes: operations on
    row ``i`` of *all* systems are a single vectorized NumPy expression
    over axis 0, mirroring how a GPU maps one thread per system.
    """

    a: np.ndarray
    b: np.ndarray
    c: np.ndarray
    d: np.ndarray

    def __post_init__(self) -> None:
        arrays = [np.asarray(v) for v in (self.a, self.b, self.c, self.d)]
        dtype = _check_dtype(np.result_type(*arrays))
        arrays = [np.ascontiguousarray(v, dtype=dtype) for v in arrays]
        shape = arrays[0].shape
        for name, arr in zip("abcd", arrays):
            if arr.ndim != 2:
                raise ValueError(f"batch diagonal {name!r} must be 2-D (M, N)")
            if arr.shape != shape:
                raise ValueError(
                    f"batch diagonal {name!r} has shape {arr.shape}, expected {shape}"
                )
        if shape[0] == 0 or shape[1] == 0:
            raise ValueError("empty batch")
        self.a, self.b, self.c, self.d = arrays
        if np.any(self.a[:, 0] != 0.0):
            self.a = self.a.copy()
            self.a[:, 0] = 0.0
        if np.any(self.c[:, -1] != 0.0):
            self.c = self.c.copy()
            self.c[:, -1] = 0.0

    @property
    def m(self) -> int:
        """Number of independent systems in the batch."""
        return self.b.shape[0]

    @property
    def n(self) -> int:
        """Size of each system."""
        return self.b.shape[1]

    @property
    def dtype(self) -> np.dtype:
        """Floating dtype of the stored diagonals."""
        return self.b.dtype

    def copy(self) -> "BatchTridiagonal":
        """Deep copy (safe to hand to in-place algorithms)."""
        return BatchTridiagonal(
            self.a.copy(), self.b.copy(), self.c.copy(), self.d.copy()
        )

    def system(self, m: int) -> TridiagonalSystem:
        """Extract system ``m`` as a standalone :class:`TridiagonalSystem`."""
        return TridiagonalSystem(
            self.a[m].copy(), self.b[m].copy(), self.c[m].copy(), self.d[m].copy()
        )

    def residual(self, x: np.ndarray) -> np.ndarray:
        """Return the batched residual ``A x − d`` with shape ``(M, N)``."""
        x = np.asarray(x, dtype=self.dtype)
        if x.shape != self.b.shape:
            raise ValueError(f"x has shape {x.shape}, expected {self.b.shape}")
        r = self.b * x - self.d
        r[:, 1:] += self.a[:, 1:] * x[:, :-1]
        r[:, :-1] += self.c[:, :-1] * x[:, 1:]
        return r

    def nbytes(self) -> int:
        """Total bytes held by the four diagonals."""
        return self.a.nbytes + self.b.nbytes + self.c.nbytes + self.d.nbytes


def as_batch(system) -> BatchTridiagonal:
    """Coerce a system, batch, or ``(a, b, c, d)`` tuple to a batch.

    Accepts a :class:`BatchTridiagonal` (returned unchanged), a
    :class:`TridiagonalSystem` (viewed as a one-row batch), or a tuple of
    four arrays that are either all 1-D (one system) or all 2-D (a batch).
    """
    if isinstance(system, BatchTridiagonal):
        return system
    if isinstance(system, TridiagonalSystem):
        return system.as_batch()
    try:
        a, b, c, d = system
    except (TypeError, ValueError) as exc:
        raise TypeError(
            "expected BatchTridiagonal, TridiagonalSystem, or (a, b, c, d) tuple"
        ) from exc
    a = np.asarray(a)
    if a.ndim == 1:
        return TridiagonalSystem(a, b, c, d).as_batch()
    return BatchTridiagonal(a, b, c, d)


def dense_from_diagonals(
    a: np.ndarray, b: np.ndarray, c: np.ndarray
) -> np.ndarray:
    """Build the dense ``n × n`` matrix from padded diagonals (testing aid)."""
    a = np.asarray(a)
    b = np.asarray(b)
    c = np.asarray(c)
    n = b.shape[0]
    out = np.zeros((n, n), dtype=np.result_type(a, b, c))
    out[np.arange(n), np.arange(n)] = b
    if n > 1:
        out[np.arange(1, n), np.arange(n - 1)] = a[1:]
        out[np.arange(n - 1), np.arange(1, n)] = c[:-1]
    return out
