"""Workload generators: the systems the paper's applications produce.

* :mod:`~repro.workloads.generators` — synthetic batches (random
  diagonally dominant, Toeplitz, Poisson-1D, graded, near-singular) in
  the ``(M, N)`` shapes the evaluation sweeps.
* :mod:`~repro.workloads.pde` — the application workloads from the
  paper's introduction: Crank–Nicolson heat conduction, 2-D ADI
  diffusion lines, cubic-spline interpolation systems, multigrid
  semi-coarsening line smoothing.
* :mod:`~repro.workloads.fluid` — the refs [4][5] fluid workload: a
  complete semi-Lagrangian + ADI scalar-transport simulator driven by
  the library's batched solves.
* :mod:`~repro.workloads.traffic` — small-request traffic shapes
  (independent fragments, shared-matrix ensembles) for the service
  tier's coalescing benchmark and the ``serve-stats`` burst.
* :mod:`~repro.workloads.timestepping` — session-driven simulators
  (2-D/3-D ADI diffusion, IMEX Crank–Nicolson with a cubic source):
  bind once per sweep direction, step thousands of right-hand sides.
"""

from repro.workloads.generators import (
    huge_system_batch,
    random_batch,
    random_block_batch,
    random_penta_batch,
    toeplitz_batch,
    poisson1d_batch,
    graded_batch,
    near_singular_batch,
)
from repro.workloads.fluid import FluidSim, advect_semi_lagrangian, diffuse_adi
from repro.workloads.poisson_fft import poisson_dirichlet_fft
from repro.workloads.traffic import shared_matrix_traffic, small_request_traffic
from repro.workloads.pde import (
    crank_nicolson_system,
    crank_nicolson_coefficients,
    crank_nicolson_rhs,
    hyperdiffusion_coefficients,
    hyperdiffusion_rhs,
    periodic_heat_coefficients,
    periodic_heat_rhs,
    adi_row_systems,
    adi_row_coefficients,
    cubic_spline_system,
    multigrid_line_systems,
)
from repro.workloads.timestepping import (
    ADIDiffusion2D,
    ADIDiffusion3D,
    CrankNicolsonCubic,
    mirror_laplacian,
)

__all__ = [
    "FluidSim",
    "advect_semi_lagrangian",
    "diffuse_adi",
    "poisson_dirichlet_fft",
    "huge_system_batch",
    "random_batch",
    "random_block_batch",
    "random_penta_batch",
    "toeplitz_batch",
    "poisson1d_batch",
    "graded_batch",
    "near_singular_batch",
    "ADIDiffusion2D",
    "ADIDiffusion3D",
    "CrankNicolsonCubic",
    "mirror_laplacian",
    "crank_nicolson_system",
    "crank_nicolson_coefficients",
    "crank_nicolson_rhs",
    "hyperdiffusion_coefficients",
    "hyperdiffusion_rhs",
    "periodic_heat_coefficients",
    "periodic_heat_rhs",
    "adi_row_systems",
    "adi_row_coefficients",
    "cubic_spline_system",
    "multigrid_line_systems",
    "shared_matrix_traffic",
    "small_request_traffic",
]
