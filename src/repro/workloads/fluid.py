"""Scalar-transport fluid simulation — the paper's refs [4][5] workload.

Sakharnykh's GTC solvers (the papers that first used p-Thomas and
PCR-Thomas hybrids) solve exactly this: advect a scalar field (smoke,
temperature) through a velocity field, then diffuse it implicitly with
ADI — two batched tridiagonal sweeps per step, which is the workload
shape the ICPP paper benchmarks.

This module is a complete, tested implementation:

* :func:`advect_semi_lagrangian` — unconditionally stable backtrace
  advection with bilinear sampling;
* :func:`diffuse_adi` — one implicit diffusion step via two batched
  tridiagonal solves (rows, then columns) with Neumann walls;
* :class:`FluidSim` — the advect-diffuse stepper, with the solver
  injectable so every tridiagonal algorithm in the library can drive
  the same simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.solver import solve_batch
from repro.workloads.pde import adi_row_systems

__all__ = ["advect_semi_lagrangian", "diffuse_adi", "FluidSim"]


def advect_semi_lagrangian(
    q: np.ndarray, u: np.ndarray, v: np.ndarray, dt: float
) -> np.ndarray:
    """Semi-Lagrangian advection of scalar ``q`` by velocity ``(u, v)``.

    Backtraces each cell centre by ``dt`` along the velocity and samples
    ``q`` there bilinearly (clamped at the walls).  Unconditionally
    stable; the classic building block of real-time fluid solvers.

    Parameters
    ----------
    q, u, v:
        ``(ny, nx)`` scalar field and velocity components (grid units
        per unit time; ``u`` is the x-component along axis 1).
    dt:
        Time step.
    """
    q = np.asarray(q)
    if q.ndim != 2 or q.shape != np.asarray(u).shape or q.shape != np.asarray(v).shape:
        raise ValueError("q, u, v must share a 2-D shape")
    ny, nx = q.shape
    jj, ii = np.meshgrid(np.arange(ny), np.arange(nx), indexing="ij")
    x = np.clip(ii - dt * u, 0.0, nx - 1.0)
    y = np.clip(jj - dt * v, 0.0, ny - 1.0)
    x0 = np.floor(x).astype(int)
    y0 = np.floor(y).astype(int)
    x1 = np.minimum(x0 + 1, nx - 1)
    y1 = np.minimum(y0 + 1, ny - 1)
    fx = x - x0
    fy = y - y0
    return (
        (1 - fy) * ((1 - fx) * q[y0, x0] + fx * q[y0, x1])
        + fy * ((1 - fx) * q[y1, x0] + fx * q[y1, x1])
    )


def diffuse_adi(q: np.ndarray, beta: float, solver=solve_batch) -> np.ndarray:
    """One ADI diffusion step: implicit x-sweep then implicit y-sweep.

    ``beta = α·dt / (2·dx²)``; Neumann (insulated) walls, so the total
    scalar is conserved to round-off.  ``solver`` takes the library's
    ``(a, b, c, d)`` batch signature — inject any algorithm.
    """
    a, b, c, d = adi_row_systems(np.asarray(q), beta)
    half = solver(a, b, c, d)
    a, b, c, d = adi_row_systems(np.ascontiguousarray(half.T), beta)
    return np.ascontiguousarray(solver(a, b, c, d).T)


@dataclass
class FluidSim:
    """Advect-diffuse scalar transport on a fixed velocity field.

    Parameters
    ----------
    u, v:
        Velocity components, ``(ny, nx)``.
    alpha:
        Diffusivity.
    dt:
        Time step.
    dx:
        Grid spacing.
    solver:
        Batched tridiagonal solver (default: the library's hybrid).
    """

    u: np.ndarray
    v: np.ndarray
    alpha: float = 1e-3
    dt: float = 1.0
    dx: float = 1.0
    solver: object = field(default=solve_batch, repr=False)
    steps_taken: int = 0

    def __post_init__(self) -> None:
        self.u = np.asarray(self.u, dtype=np.float64)
        self.v = np.asarray(self.v, dtype=np.float64)
        if self.u.shape != self.v.shape or self.u.ndim != 2:
            raise ValueError("u and v must share a 2-D shape")
        if self.dt <= 0 or self.dx <= 0:
            raise ValueError("dt and dx must be positive")

    @property
    def beta(self) -> float:
        """ADI diffusion number ``α·dt / (2·dx²)``."""
        return self.alpha * self.dt / (2.0 * self.dx * self.dx)

    def step(self, q: np.ndarray) -> np.ndarray:
        """Advance the scalar one advect-diffuse step."""
        q = advect_semi_lagrangian(q, self.u, self.v, self.dt)
        q = diffuse_adi(q, self.beta, self.solver)
        self.steps_taken += 1
        return q

    def run(self, q: np.ndarray, steps: int) -> np.ndarray:
        """Advance ``steps`` steps."""
        for _ in range(steps):
            q = self.step(q)
        return q

    @staticmethod
    def vortex(ny: int, nx: int, strength: float = 1.0) -> tuple:
        """A solid-body rotation velocity field about the grid centre."""
        jj, ii = np.meshgrid(np.arange(ny), np.arange(nx), indexing="ij")
        cy, cx = (ny - 1) / 2.0, (nx - 1) / 2.0
        return (
            -strength * (jj - cy),
            strength * (ii - cx),
        )
