"""Synthetic tridiagonal batch generators.

All generators return ``(a, b, c, d)`` as ``(M, N)`` arrays in the
padded convention (``a[:, 0] == c[:, -1] == 0``) and take a seed so
every benchmark row is reproducible.  The default is strictly
diagonally dominant — the regime in which pivot-free Thomas/CR/PCR are
provably stable and in which the paper (like every GPU-tridiagonal
paper of its era) evaluates.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "huge_system_batch",
    "random_batch",
    "random_block_batch",
    "random_penta_batch",
    "toeplitz_batch",
    "poisson1d_batch",
    "graded_batch",
    "near_singular_batch",
]


def random_batch(
    m: int,
    n: int,
    dtype=np.float64,
    seed: int = 0,
    dominance: float = 2.0,
):
    """Random strictly diagonally dominant batch.

    Off-diagonals are standard normal; the main diagonal is
    ``dominance + |a| + |c|`` (row margin exactly ``dominance``).
    """
    if dominance <= 0:
        raise ValueError(f"dominance must be > 0, got {dominance}")
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, n)).astype(dtype)
    c = rng.standard_normal((m, n)).astype(dtype)
    a[:, 0] = 0.0
    c[:, -1] = 0.0
    b = (dominance + np.abs(a) + np.abs(c)).astype(dtype)
    d = rng.standard_normal((m, n)).astype(dtype)
    return a, b, c, d


def huge_system_batch(
    n: int,
    m: int = 4,
    dtype=np.float64,
    seed: int = 0,
    dominance: float = 2.0,
):
    """A few very long systems — the distributed backend's home shape.

    The evaluation sweeps stress large ``M`` with moderate ``N``; a
    domain-decomposed solver stresses the opposite corner (one huge
    grid line per system, split across ranks).  Memory-bound by
    construction: the coefficient arrays alone dwarf every cache
    level once ``N`` reaches the multi-million-row regime the
    N-partition backend targets.

    ``n`` leads the signature (it is the axis under study); the batch
    width ``m`` defaults to a token handful of systems.
    """
    if n < 2:
        raise ValueError(f"need n >= 2, got {n}")
    return random_batch(m, n, dtype=dtype, seed=seed, dominance=dominance)


def random_penta_batch(
    m: int,
    n: int,
    dtype=np.float64,
    seed: int = 0,
    dominance: float = 2.0,
):
    """Random strictly diagonally dominant pentadiagonal batch.

    Returns ``(e, a, b, c, f, d)`` in offset order −2…+2, padded
    (``e[:, :2]``, ``a[:, 0]``, ``c[:, -1]``, ``f[:, -2:]`` zero); the
    main diagonal carries a row margin of exactly ``dominance``.
    """
    if dominance <= 0:
        raise ValueError(f"dominance must be > 0, got {dominance}")
    rng = np.random.default_rng(seed)
    e = rng.standard_normal((m, n)).astype(dtype)
    a = rng.standard_normal((m, n)).astype(dtype)
    c = rng.standard_normal((m, n)).astype(dtype)
    f = rng.standard_normal((m, n)).astype(dtype)
    e[:, : min(2, n)] = 0.0
    a[:, 0] = 0.0
    c[:, -1] = 0.0
    f[:, max(0, n - 2):] = 0.0
    b = (
        dominance + np.abs(e) + np.abs(a) + np.abs(c) + np.abs(f)
    ).astype(dtype)
    d = rng.standard_normal((m, n)).astype(dtype)
    return e, a, b, c, f, d


def random_block_batch(
    m: int,
    n: int,
    block_size: int = 2,
    dtype=np.float64,
    seed: int = 0,
    dominance: float = 2.0,
):
    """Random block-diagonally dominant block-tridiagonal batch.

    Returns ``(A, B, C, d)`` with ``(M, N, B, B)`` block stacks
    (``A[:, 0]`` and ``C[:, -1]`` zero) and ``(M, N, B)`` right-hand
    sides; each diagonal block is an identity scaled past its
    neighbours' row sums plus ``dominance``, the standard sufficient
    condition for pivot-free block-Thomas.
    """
    if dominance <= 0:
        raise ValueError(f"dominance must be > 0, got {dominance}")
    if block_size < 1:
        raise ValueError(f"block_size must be >= 1, got {block_size}")
    rng = np.random.default_rng(seed)
    bs = block_size
    A = rng.standard_normal((m, n, bs, bs)).astype(dtype)
    C = rng.standard_normal((m, n, bs, bs)).astype(dtype)
    A[:, 0] = 0.0
    C[:, -1] = 0.0
    B = rng.standard_normal((m, n, bs, bs)).astype(dtype)
    row_sums = (
        np.abs(A).sum(axis=3) + np.abs(B).sum(axis=3) + np.abs(C).sum(axis=3)
    )
    shift = dominance + row_sums.max(axis=2)  # (m, n)
    B = B + shift[..., None, None] * np.eye(bs, dtype=dtype)
    d = rng.standard_normal((m, n, bs)).astype(dtype)
    return A, B.astype(dtype), C, d


def toeplitz_batch(
    m: int,
    n: int,
    dtype=np.float64,
    seed: int = 0,
    coeffs=(-1.0, 2.5, -1.0),
):
    """Constant-coefficient (Toeplitz) batch — PDE-stencil shaped.

    All systems share the stencil ``coeffs = (a, b, c)``; right-hand
    sides are random.  Requires ``|b| > |a| + |c|`` unless you know what
    you are doing (not enforced, for conditioning experiments).
    """
    lo, di, up = coeffs
    rng = np.random.default_rng(seed)
    a = np.full((m, n), lo, dtype=dtype)
    b = np.full((m, n), di, dtype=dtype)
    c = np.full((m, n), up, dtype=dtype)
    a[:, 0] = 0.0
    c[:, -1] = 0.0
    d = rng.standard_normal((m, n)).astype(dtype)
    return a, b, c, d


def poisson1d_batch(m: int, n: int, dtype=np.float64, seed: int = 0):
    """The 1-D Poisson stencil ``[-1, 2, -1]`` (weakly dominant).

    The classic hardest well-posed tridiagonal test: condition number
    grows like ``n²``.  Good for accuracy comparisons across algorithms.
    """
    return toeplitz_batch(m, n, dtype=dtype, seed=seed, coeffs=(-1.0, 2.0, -1.0))


def graded_batch(
    m: int,
    n: int,
    dtype=np.float64,
    seed: int = 0,
    ratio: float = 1e3,
):
    """Rows whose scale varies smoothly by ``ratio`` across the system.

    Exercises the solvers' behaviour under badly scaled (but still
    dominant) data — a common failure mode for naive implementations.
    """
    a, b, c, d = random_batch(m, n, dtype=dtype, seed=seed)
    scale = np.logspace(0, np.log10(ratio), n, dtype=dtype)[None, :]
    return a * scale, b * scale, c * scale, d * scale


def near_singular_batch(
    m: int,
    n: int,
    dtype=np.float64,
    seed: int = 0,
    margin: float = 1e-6,
):
    """Barely-dominant systems (row margin ``margin``) for robustness tests."""
    return random_batch(m, n, dtype=dtype, seed=seed, dominance=margin)
