"""Application workloads from the paper's introduction.

The paper motivates tridiagonal solvers with fluid dynamics (ADI),
cubic splines, Poisson solvers and multigrid smoothing.  These builders
produce the actual systems those applications assemble, in the batched
``(M, N)`` layout the library consumes; the examples drive full
simulations with them.

The time-stepping workloads (Crank–Nicolson, ADI) have **fixed
coefficients** — only the right-hand side changes between steps.  Each
therefore splits into a coefficient-only builder (call once, feed
:func:`repro.prepare`) and an RHS-only builder (call every step):
``crank_nicolson_coefficients`` / ``crank_nicolson_rhs`` and
``adi_row_coefficients``.  The original one-shot builders delegate to
these, so both spellings assemble bit-identical systems.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "crank_nicolson_system",
    "crank_nicolson_coefficients",
    "crank_nicolson_rhs",
    "hyperdiffusion_coefficients",
    "hyperdiffusion_rhs",
    "periodic_heat_coefficients",
    "periodic_heat_rhs",
    "adi_row_systems",
    "adi_row_coefficients",
    "cubic_spline_system",
    "multigrid_line_systems",
]


def crank_nicolson_coefficients(
    m: int, n: int, alpha: float, dt: float, dx: float, dtype=np.float64
):
    """Coefficients of the Crank–Nicolson step matrix (RHS-independent).

    The implicit half of CN with Dirichlet boundaries depends only on
    the grid and ``r = α·dt/(2·dx²)`` — never on the field — so a
    simulation can factor it once (:func:`repro.prepare`) and stream
    each step's RHS from :func:`crank_nicolson_rhs`.

    Returns
    -------
    tuple
        ``(a, b, c)`` diagonals of shape ``(m, n)``.
    """
    r = alpha * dt / (2.0 * dx * dx)
    a = np.full((m, n), -r, dtype=dtype)
    b = np.full((m, n), 1.0 + 2.0 * r, dtype=dtype)
    c = np.full((m, n), -r, dtype=dtype)
    # Dirichlet rows: identity
    a[:, 0] = 0.0
    c[:, -1] = 0.0
    b[:, 0] = 1.0
    b[:, -1] = 1.0
    c[:, 0] = 0.0
    a[:, -1] = 0.0
    return a, b, c


def crank_nicolson_rhs(u: np.ndarray, alpha: float, dt: float, dx: float):
    """The explicit (RHS) half of a Crank–Nicolson step.

    ``u`` is the ``(M, N)`` current field; pairs with
    :func:`crank_nicolson_coefficients` for prepared time stepping.
    """
    u = np.asarray(u)
    if u.ndim != 2:
        raise ValueError(f"u must be (M, N), got {u.ndim}-D")
    r = alpha * dt / (2.0 * dx * dx)
    d = u.copy()
    d[:, 1:-1] = (
        r * u[:, :-2] + (1.0 - 2.0 * r) * u[:, 1:-1] + r * u[:, 2:]
    )
    d[:, 0] = u[:, 0]
    d[:, -1] = u[:, -1]
    return d


def crank_nicolson_system(u: np.ndarray, alpha: float, dt: float, dx: float):
    """Crank–Nicolson step systems for batched 1-D heat conduction.

    Parameters
    ----------
    u:
        ``(M, N)`` current temperature fields (one rod per row),
        Dirichlet boundaries held at ``u[:, 0]`` and ``u[:, -1]``.
    alpha:
        Diffusivity.
    dt, dx:
        Time step and grid spacing.

    Returns
    -------
    tuple
        ``(a, b, c, d)`` such that solving gives the field at ``t + dt``.
    """
    u = np.asarray(u)
    if u.ndim != 2:
        raise ValueError(f"u must be (M, N), got {u.ndim}-D")
    m, n = u.shape
    a, b, c = crank_nicolson_coefficients(m, n, alpha, dt, dx, dtype=u.dtype)
    return a, b, c, crank_nicolson_rhs(u, alpha, dt, dx)


def hyperdiffusion_coefficients(
    m: int, n: int, kappa: float, dt: float, dx: float, dtype=np.float64
):
    """Implicit-Euler hyperdiffusion step matrix (RHS-independent).

    The fourth-order damping term ``u_t = −κ·u_xxxx`` — the standard
    hyperdiffusion regularization of spectral and finite-difference
    turbulence codes (cf. Gloster et al., cuPentBatch, arXiv
    1909.04539) — discretizes implicitly to a **pentadiagonal** batch:
    ``(I + r·D₄)·u^{t+1} = u^t`` with ``r = κ·dt/dx⁴`` and the
    five-point biharmonic stencil ``(1, −4, 6, −4, 1)``.  The matrix
    depends only on the grid, so a simulation factors it once
    (pentadiagonal requests fingerprint-cache their LU) and streams
    each step's field as the RHS.

    Boundary closure: the first/last two rows are identity (clamped
    values), the simple Dirichlet-style closure that keeps the system
    strictly diagonally dominant for every ``r > 0``.

    Returns
    -------
    tuple
        ``(e, a, b, c, f)`` diagonals of shape ``(m, n)`` in offset
        order −2, −1, 0, +1, +2 — feed to ``solve_via(a, b, c, d,
        e=e, f=f)`` or :func:`repro.api.gpsv_batch`.
    """
    if n < 5:
        raise ValueError(f"hyperdiffusion stencil needs n >= 5, got {n}")
    r = kappa * dt / (dx ** 4)
    e = np.full((m, n), r, dtype=dtype)
    a = np.full((m, n), -4.0 * r, dtype=dtype)
    b = np.full((m, n), 1.0 + 6.0 * r, dtype=dtype)
    c = np.full((m, n), -4.0 * r, dtype=dtype)
    f = np.full((m, n), r, dtype=dtype)
    # clamped rows: identity at the two boundary points on each side
    for j in (0, 1, n - 2, n - 1):
        b[:, j] = 1.0
        a[:, j] = 0.0
        c[:, j] = 0.0
        e[:, j] = 0.0
        f[:, j] = 0.0
    # out-of-matrix pads
    e[:, :2] = 0.0
    a[:, 0] = 0.0
    c[:, -1] = 0.0
    f[:, -2:] = 0.0
    return e, a, b, c, f


def hyperdiffusion_rhs(u: np.ndarray):
    """The RHS of an implicit-Euler hyperdiffusion step: the field itself.

    ``u`` is the ``(M, N)`` current field; pairs with
    :func:`hyperdiffusion_coefficients` (clamped boundary rows carry
    the boundary values through unchanged).
    """
    u = np.asarray(u)
    if u.ndim != 2:
        raise ValueError(f"u must be (M, N), got {u.ndim}-D")
    return u.copy()


def periodic_heat_coefficients(
    m: int, n: int, alpha: float, dt: float, dx: float, dtype=np.float64
):
    """Crank–Nicolson step matrix on a *ring* (periodic boundaries).

    Heat conduction on closed loops — annular ducts, ring resonators,
    the azimuthal direction of any polar grid — has no boundary rows:
    every grid point couples to both neighbours, with points ``0`` and
    ``n−1`` coupling to each other through the cyclic corners.  The
    returned diagonals use the cyclic convention of
    :func:`repro.solve_periodic_batch` (corners live in ``a[:, 0]`` and
    ``c[:, -1]``); feed them to ``repro.prepare(..., periodic=True)``
    and stream each step's RHS from :func:`periodic_heat_rhs`.

    Returns
    -------
    tuple
        ``(a, b, c)`` cyclic diagonals of shape ``(m, n)``.
    """
    r = alpha * dt / (2.0 * dx * dx)
    a = np.full((m, n), -r, dtype=dtype)
    b = np.full((m, n), 1.0 + 2.0 * r, dtype=dtype)
    c = np.full((m, n), -r, dtype=dtype)
    return a, b, c


def periodic_heat_rhs(u: np.ndarray, alpha: float, dt: float, dx: float):
    """The explicit half of a periodic Crank–Nicolson step.

    ``u`` is the ``(M, N)`` field on the ring; the stencil wraps via
    ``np.roll``, so the RHS conserves the field's total mass exactly
    (the explicit operator's row sums are 1).
    """
    u = np.asarray(u)
    if u.ndim != 2:
        raise ValueError(f"u must be (M, N), got {u.ndim}-D")
    r = alpha * dt / (2.0 * dx * dx)
    return (
        r * np.roll(u, 1, axis=1)
        + (1.0 - 2.0 * r) * u
        + r * np.roll(u, -1, axis=1)
    )


def adi_row_systems(field: np.ndarray, beta: float):
    """One ADI half-step's row systems for 2-D implicit diffusion.

    Douglas-Rachford style: implicit in the sweep direction with
    parameter ``beta = α·dt/(2·dx²)``, explicit in the other (which the
    caller folds into ``field`` before the sweep).  The returned batch
    treats every grid row as an independent system — the exact workload
    shape (``M`` = rows, ``N`` = columns) of the paper's fluid examples.
    """
    f = np.asarray(field)
    if f.ndim != 2:
        raise ValueError(f"field must be 2-D, got {f.ndim}-D")
    m, n = f.shape
    a, b, c = adi_row_coefficients(m, n, beta, dtype=f.dtype)
    return a, b, c, f.copy()


def adi_row_coefficients(m: int, n: int, beta: float, dtype=np.float64):
    """The ADI half-step matrix alone (RHS-independent).

    ``beta`` and the grid fix the matrix for the whole simulation; an
    ADI loop prepares the row- and column-sweep matrices once
    (:func:`repro.prepare`) and feeds only the folded explicit field
    each half-step.  Same closure as :func:`adi_row_systems`.

    Returns
    -------
    tuple
        ``(a, b, c)`` diagonals of shape ``(m, n)``.
    """
    a = np.full((m, n), -beta, dtype=dtype)
    b = np.full((m, n), 1.0 + 2.0 * beta, dtype=dtype)
    c = np.full((m, n), -beta, dtype=dtype)
    a[:, 0] = 0.0
    c[:, -1] = 0.0
    # Neumann-ish boundary closure: mirror the missing neighbour
    b[:, 0] = 1.0 + beta
    b[:, -1] = 1.0 + beta
    return a, b, c


def cubic_spline_system(x: np.ndarray, y: np.ndarray):
    """Natural-cubic-spline second-derivative systems (paper ref [8]).

    Parameters
    ----------
    x:
        Knot abscissae, shape ``(N,)`` (shared) — strictly increasing.
    y:
        Ordinates, shape ``(M, N)`` — one curve per row.

    Returns
    -------
    tuple
        ``(a, b, c, d)`` whose solution is the spline's second
        derivative at the knots (natural end conditions).
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.atleast_2d(np.asarray(y, dtype=np.float64))
    if x.ndim != 1 or x.shape[0] != y.shape[1]:
        raise ValueError("x must be (N,) matching y's second axis")
    if np.any(np.diff(x) <= 0):
        raise ValueError("knots must be strictly increasing")
    m, n = y.shape
    if n < 3:
        raise ValueError(f"need at least 3 knots, got {n}")
    h = np.diff(x)  # (N-1,)
    a = np.zeros((m, n))
    b = np.ones((m, n))
    c = np.zeros((m, n))
    d = np.zeros((m, n))
    a[:, 1:-1] = h[:-1]
    b[:, 1:-1] = 2.0 * (h[:-1] + h[1:])
    c[:, 1:-1] = h[1:]
    slope = np.diff(y, axis=1) / h
    d[:, 1:-1] = 6.0 * np.diff(slope, axis=1)
    # natural end conditions: M_0 = M_{n-1} = 0 (identity rows)
    return a, b, c, d


def multigrid_line_systems(
    residual: np.ndarray, anisotropy: float = 10.0, dx: float = 1.0
):
    """Line-relaxation systems for semi-coarsening multigrid (refs [9][10]).

    For the anisotropic operator ``-u_xx - ε·u_yy`` with strong coupling
    in x, line smoothing solves each grid line implicitly in x — a batch
    of tridiagonal systems per sweep, the multigrid workload Göddeke &
    Strzodka ran CR for.

    Parameters
    ----------
    residual:
        ``(M, N)`` right-hand sides, one grid line per row.
    anisotropy:
        Coupling ratio ``ε⁻¹ ≥ 1`` (strong x-coupling).
    dx:
        Grid spacing.
    """
    r = np.asarray(residual)
    if r.ndim != 2:
        raise ValueError(f"residual must be 2-D, got {r.ndim}-D")
    if anisotropy < 1.0:
        raise ValueError(f"anisotropy must be >= 1, got {anisotropy}")
    m, n = r.shape
    dtype = r.dtype
    inv_h2 = 1.0 / (dx * dx)
    eps = 1.0 / anisotropy
    a = np.full((m, n), -inv_h2, dtype=dtype)
    c = np.full((m, n), -inv_h2, dtype=dtype)
    b = np.full((m, n), 2.0 * inv_h2 + 2.0 * eps * inv_h2, dtype=dtype)
    a[:, 0] = 0.0
    c[:, -1] = 0.0
    return a, b, c, r.copy()
