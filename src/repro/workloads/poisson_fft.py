"""Hockney's fast Poisson solver — the paper's ref [6], built.

Hockney (1965): Fourier-analyze the 2-D Poisson equation in one
direction; each retained mode satisfies an independent *tridiagonal*
system in the other direction; transform back.  O(n² log n) total, and
the middle stage is precisely the batched-tridiagonal workload shape
(``M`` modes × ``N`` rows) the ICPP paper accelerates.

Implemented for ``−∇²u = f`` on a rectangle with homogeneous Dirichlet
walls, via the DST-I (sine) transform in x:

1. ``f̂ = DST_x(f)`` — per-row sine transform;
2. for each mode ``i`` with eigenvalue
   ``λ_i = 2 − 2·cos(π(i+1)/(nx+1))``, solve the tridiagonal system
   ``(λ_i/dx² + 2/dy²) û_{i,j} − (û_{i,j−1} + û_{i,j+1})/dy² = f̂_{i,j}``
   over ``j`` — one batched solve of ``nx`` independent systems;
3. ``u = DST⁻¹_x(û)``.
"""

from __future__ import annotations

import numpy as np
from scipy.fft import dst, idst

from repro.core.solver import solve_batch

__all__ = ["poisson_dirichlet_fft", "poisson_residual"]


def poisson_dirichlet_fft(
    f: np.ndarray, dx: float = 1.0, dy: float = 1.0, solver=solve_batch
) -> np.ndarray:
    """Solve ``−∇²u = f`` with homogeneous Dirichlet walls.

    Parameters
    ----------
    f:
        ``(ny, nx)`` right-hand side at interior points.
    dx, dy:
        Grid spacings (walls sit half outside: the 5-point stencil with
        ``u = 0`` beyond the boundary).
    solver:
        Batched tridiagonal solver taking the library's ``(a, b, c, d)``.

    Returns
    -------
    numpy.ndarray
        ``(ny, nx)`` solution at the interior points.
    """
    f = np.asarray(f, dtype=np.float64)
    if f.ndim != 2:
        raise ValueError(f"f must be 2-D, got {f.ndim}-D")
    ny, nx = f.shape
    if min(ny, nx) < 2:
        raise ValueError("need at least a 2x2 interior")

    # 1. sine-transform each row (x-direction)
    fhat = dst(f, type=1, axis=1)

    # 2. per-mode tridiagonal systems in y: mode i is column i of fhat;
    #    batch them as (nx, ny)
    modes = np.arange(1, nx + 1)
    lam = (2.0 - 2.0 * np.cos(np.pi * modes / (nx + 1))) / (dx * dx)  # (nx,)
    rhs = np.ascontiguousarray(fhat.T)  # (nx, ny)
    a = np.full((nx, ny), -1.0 / (dy * dy))
    c = np.full((nx, ny), -1.0 / (dy * dy))
    b = np.repeat((lam + 2.0 / (dy * dy))[:, None], ny, axis=1)
    a[:, 0] = 0.0
    c[:, -1] = 0.0
    uhat_t = solver(a, b, c, rhs)  # (nx, ny)

    # 3. inverse transform
    return idst(np.ascontiguousarray(uhat_t.T), type=1, axis=1)


def poisson_residual(u: np.ndarray, f: np.ndarray, dx: float = 1.0,
                     dy: float = 1.0) -> float:
    """Max-norm residual of ``−∇²u − f`` with Dirichlet-zero walls."""
    u = np.asarray(u)
    f = np.asarray(f)
    up = np.pad(u, 1)
    lap = (
        (2 * u - up[1:-1, :-2] - up[1:-1, 2:]) / (dx * dx)
        + (2 * u - up[:-2, 1:-1] - up[2:, 1:-1]) / (dy * dy)
    )
    scale = max(np.abs(f).max(), 1e-300)
    return float(np.abs(lap - f).max() / scale)
