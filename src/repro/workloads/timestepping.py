"""Time-stepping applications driving the bind/execute spine.

The motivating workloads of the session tier — ADI diffusion and
IMEX Crank–Nicolson — solve the *same matrix* against thousands of
right-hand sides.  Each simulator here binds one
:class:`~repro.engine.session.BoundSolve` per sweep direction at
construction (:func:`repro.backends.registry.bind_via`), then runs an
allocation-light ``step`` loop: explicit operators are applied in
place into reused buffers, and every implicit sweep is a session
``step`` — no per-step validation, plan lookup, factorization fetch,
or trace construction.

* :class:`ADIDiffusion2D` — Peaceman–Rachford alternating-direction
  implicit diffusion on an ``(ny, nx)`` grid: two half-steps, one
  session per sweep direction (the row sweep solves the grid as an
  ``(ny, nx)`` batch, the column sweep its transpose).
* :class:`ADIDiffusion3D` — locally-one-dimensional (LOD) splitting on
  an ``(nz, ny, nx)`` grid: three Crank–Nicolson sweeps per step, each
  reshaping the grid into a 2-D batch along its own axis.
* :class:`CrankNicolsonCubic` — 1-D IMEX reaction–diffusion
  ``u_t = α·u_xx + ε·u − γ·u³`` (the real Ginzburg–Landau / Allen–Cahn
  shape): Crank–Nicolson diffusion implicit, cubic source explicit,
  with a ``periodic=True`` variant riding the cyclic session path.

Every simulator exposes ``reference_step`` — the same operators
evaluated through dense linear algebra — so tests and
``benchmarks/bench_applications.py`` can measure accuracy against an
independent implementation on small grids.

The implicit matrices come from :mod:`repro.workloads.pde`
(:func:`~repro.workloads.pde.adi_row_coefficients`,
:func:`~repro.workloads.pde.crank_nicolson_coefficients`,
:func:`~repro.workloads.pde.periodic_heat_coefficients`), so the
boundary closures match the rest of the workload suite: mirrored
missing neighbours for ADI, Dirichlet identity rows for plain CN,
cyclic corners for the periodic variant.
"""

from __future__ import annotations

import numpy as np

from repro.backends.registry import bind_via
from repro.workloads.pde import (
    adi_row_coefficients,
    crank_nicolson_coefficients,
    crank_nicolson_rhs,
    periodic_heat_coefficients,
    periodic_heat_rhs,
)

__all__ = [
    "ADIDiffusion2D",
    "ADIDiffusion3D",
    "CrankNicolsonCubic",
    "mirror_laplacian",
]


def mirror_laplacian(u: np.ndarray, axis: int = -1, out=None) -> np.ndarray:
    """Second difference along ``axis`` with mirrored missing neighbours.

    The explicit counterpart of the implicit closure in
    :func:`~repro.workloads.pde.adi_row_coefficients` (``b`` carries
    ``1 + β`` at the ends): at each boundary the out-of-grid neighbour
    mirrors the boundary point, so the operator's row sums vanish and
    diffusion conserves the field's total mass.
    """
    if out is None:
        out = np.empty_like(u)
    # native-axis slicing (no transposed views): the interior update is
    # three in-place ufunc passes evaluating (u_prev - 2*u_mid) + u_next
    pre = (slice(None),) * (axis % u.ndim)
    mid = pre + (slice(1, -1),)
    lo2, hi2 = pre + (slice(None, -2),), pre + (slice(2, None),)
    np.multiply(u[mid], 2.0, out=out[mid])
    np.subtract(u[lo2], out[mid], out=out[mid])
    np.add(out[mid], u[hi2], out=out[mid])
    out[pre + (0,)] = u[pre + (1,)] - u[pre + (0,)]
    out[pre + (-1,)] = u[pre + (-2,)] - u[pre + (-1,)]
    return out


def _sweep_matrix(n: int, beta: float, dtype) -> np.ndarray:
    """Dense ``(I − β·L)`` with the mirror closure, for references."""
    A = np.zeros((n, n), dtype=dtype)
    idx = np.arange(n)
    A[idx, idx] = 1.0 + 2.0 * beta
    A[idx[:-1], idx[:-1] + 1] = -beta
    A[idx[1:], idx[1:] - 1] = -beta
    A[0, 0] = 1.0 + beta
    A[n - 1, n - 1] = 1.0 + beta
    return A


class ADIDiffusion2D:
    """Peaceman–Rachford ADI diffusion on an ``(ny, nx)`` grid.

    Each step is two half-steps: implicit in x / explicit in y, then
    implicit in y / explicit in x, both with parameter
    ``β = α·Δt / (2·Δ²)`` per direction.  The two sweep matrices are
    fixed for the whole simulation, so construction binds one session
    per direction and ``step`` touches only right-hand sides.

    Parameters
    ----------
    u0:
        Initial ``(ny, nx)`` field (copied).
    alpha, dt:
        Diffusivity and time step.
    dx, dy:
        Grid spacings (``dy`` defaults to ``dx``).
    backend, workers, check:
        Forwarded to :func:`~repro.backends.registry.bind_via` for both
        sessions.
    """

    def __init__(
        self,
        u0,
        alpha: float,
        dt: float,
        dx: float = 1.0,
        dy: float | None = None,
        *,
        backend: str = "auto",
        workers: int | None = None,
        check: bool = True,
    ):
        u0 = np.asarray(u0, dtype=np.float64)
        if u0.ndim != 2:
            raise ValueError(f"u0 must be (ny, nx), got {u0.ndim}-D")
        self.u = np.ascontiguousarray(u0)
        self.ny, self.nx = self.u.shape
        dy = dx if dy is None else dy
        self.beta_x = alpha * dt / (2.0 * dx * dx)
        self.beta_y = alpha * dt / (2.0 * dy * dy)
        self.dt = dt
        self.t = 0.0
        self.steps = 0
        ax, bx, cx = adi_row_coefficients(self.ny, self.nx, self.beta_x)
        ay, by, cy = adi_row_coefficients(self.nx, self.ny, self.beta_y)
        # fingerprint=True declares the many-RHS reuse intent: the bind
        # licenses a stored factorization at any batch size, so every
        # step runs the RHS-only fast path
        kw = dict(backend=backend, workers=workers, check=check, fingerprint=True)
        self._row = bind_via(ax, bx, cx, np.zeros_like(bx), **kw)
        self._col = bind_via(ay, by, cy, np.zeros_like(by), **kw)
        # the whole step runs in the sweeps' native transposed layout:
        # tmp/lap are (ny, nx) scratch, d1t/tmp_t stage the (nx, ny)
        # row-sweep RHS, d2 the (ny, nx) column-sweep RHS
        self._lap = np.empty_like(self.u)
        self._tmp = np.empty_like(self.u)
        self._d1t = np.empty((self.nx, self.ny))
        self._tmp_t = np.empty((self.nx, self.ny))
        self._d2 = np.empty_like(self.u)

    def step(self) -> np.ndarray:
        """Advance one Δt; returns the updated field (owned by self).

        Both implicit sweeps run through the sessions' transposed-layout
        ``step_t`` — each solve reads/writes the ``(N, M)`` orientation
        the Thomas sweep uses internally, so no staging transposes are
        paid inside the solves.  The second half-step's explicit
        operator uses the Peaceman–Rachford identity
        ``(I + βx·Lx)·u* = 2·u* − d1`` (exact: ``u*`` solved
        ``(I − βx·Lx)·u* = d1``), which avoids re-applying the stencil.
        """
        u, lap, tmp = self.u, self._lap, self._tmp
        # half-step 1: d1 = (I + βy·Ly)·u, staged into the row sweep's
        # (nx, ny) layout; implicit x along the rows
        mirror_laplacian(u, axis=0, out=lap)
        np.multiply(lap, self.beta_y, out=tmp)
        np.add(tmp, u, out=tmp)
        self._d1t[:] = tmp.T
        ustar_t = self._row.step_t(self._d1t)  # (nx, ny) session buffer
        # half-step 2: d2 = 2·u* − d1, already in (nx, ny); transpose
        # into the column sweep's (ny, nx) layout and solve in place
        np.multiply(ustar_t, 2.0, out=self._tmp_t)
        np.subtract(self._tmp_t, self._d1t, out=self._tmp_t)
        self._d2[:] = self._tmp_t.T
        self._col.step_t(self._d2, out_t=self.u)
        self.t += self.dt
        self.steps += 1
        return self.u

    def run(self, n_steps: int) -> np.ndarray:
        """Advance ``n_steps`` and return the field."""
        for _ in range(n_steps):
            self.step()
        return self.u

    def reference_step(self, u: np.ndarray) -> np.ndarray:
        """The same Peaceman–Rachford step through dense solves."""
        u = np.asarray(u, dtype=np.float64)
        Ax = _sweep_matrix(self.nx, self.beta_x, u.dtype)
        Ay = _sweep_matrix(self.ny, self.beta_y, u.dtype)
        d1 = u + self.beta_y * mirror_laplacian(u, axis=0)
        ustar = np.linalg.solve(Ax, d1.T).T
        d2 = 2.0 * ustar - d1  # the same (I + βx·Lx)·u* identity
        return np.linalg.solve(Ay, d2)

    def close(self) -> None:
        """Release both sweep sessions."""
        self._row.close()
        self._col.close()

    def __enter__(self) -> "ADIDiffusion2D":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ADIDiffusion3D:
    """LOD (locally one-dimensional) implicit diffusion on ``(nz, ny, nx)``.

    Douglas-style splitting: each step runs three Crank–Nicolson
    sweeps — x, then y, then z — each implicit only along its own axis
    with ``β = α·Δt / (2·Δ²)``.  Every sweep reshapes the grid into an
    ``(M, N)`` batch whose rows are the grid lines of that direction,
    served by its own bound session.
    """

    def __init__(
        self,
        u0,
        alpha: float,
        dt: float,
        dx: float = 1.0,
        *,
        backend: str = "auto",
        workers: int | None = None,
        check: bool = True,
    ):
        u0 = np.asarray(u0, dtype=np.float64)
        if u0.ndim != 3:
            raise ValueError(f"u0 must be (nz, ny, nx), got {u0.ndim}-D")
        self.u = np.ascontiguousarray(u0)
        self.nz, self.ny, self.nx = self.u.shape
        self.beta = alpha * dt / (2.0 * dx * dx)
        self.dt = dt
        self.t = 0.0
        self.steps = 0
        kw = dict(backend=backend, workers=workers, check=check, fingerprint=True)
        nz, ny, nx = self.nz, self.ny, self.nx
        ax, bx, cx = adi_row_coefficients(nz * ny, nx, self.beta)
        ay, by, cy = adi_row_coefficients(nz * nx, ny, self.beta)
        az, bz, cz = adi_row_coefficients(ny * nx, nz, self.beta)
        self._sx = bind_via(ax, bx, cx, np.zeros_like(bx), **kw)
        self._sy = bind_via(ay, by, cy, np.zeros_like(by), **kw)
        self._sz = bind_via(az, bz, cz, np.zeros_like(bz), **kw)
        # one flat scratch triplet serves all three sweep orientations
        # (equal element counts); each is consumed before its next reuse
        size = nz * ny * nx
        self._lap3 = np.empty(size)
        self._d3 = np.empty(size)
        self._x3 = np.empty(size)

    def _sweep(self, session, u: np.ndarray) -> np.ndarray:
        """One CN sweep along ``u``'s last axis, through reused scratch."""
        shape = u.shape
        lap = self._lap3.reshape(shape)
        d = self._d3.reshape(shape)
        mirror_laplacian(u, out=lap)
        np.multiply(lap, self.beta, out=d)
        np.add(d, u, out=d)
        m2 = shape[0] * shape[1]
        x = session.step(
            d.reshape(m2, shape[2]), out=self._x3.reshape(m2, shape[2])
        )
        return x.reshape(shape)

    def step(self) -> np.ndarray:
        """Advance one Δt; returns the updated field (owned by self)."""
        u = self.u  # (nz, ny, nx): x is the last axis already
        u = self._sweep(self._sx, u)
        ut = np.ascontiguousarray(u.transpose(0, 2, 1))  # (nz, nx, ny)
        ut = self._sweep(self._sy, ut)
        u = ut.transpose(0, 2, 1)
        ut = np.ascontiguousarray(u.transpose(1, 2, 0))  # (ny, nx, nz)
        ut = self._sweep(self._sz, ut)
        self.u = np.ascontiguousarray(ut.transpose(2, 0, 1))
        self.t += self.dt
        self.steps += 1
        return self.u

    def run(self, n_steps: int) -> np.ndarray:
        """Advance ``n_steps`` and return the field."""
        for _ in range(n_steps):
            self.step()
        return self.u

    def reference_step(self, u: np.ndarray) -> np.ndarray:
        """The same three LOD sweeps through dense solves."""
        u = np.asarray(u, dtype=np.float64)

        def dense_sweep(v):
            A = _sweep_matrix(v.shape[-1], self.beta, v.dtype)
            d = v + self.beta * mirror_laplacian(v)
            flat = d.reshape(-1, v.shape[-1])
            return np.linalg.solve(A, flat.T).T.reshape(v.shape)

        u = dense_sweep(u)
        u = dense_sweep(u.transpose(0, 2, 1)).transpose(0, 2, 1)
        u = dense_sweep(u.transpose(1, 2, 0)).transpose(2, 0, 1)
        return u

    def close(self) -> None:
        """Release all three sweep sessions."""
        self._sx.close()
        self._sy.close()
        self._sz.close()

    def __enter__(self) -> "ADIDiffusion3D":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class CrankNicolsonCubic:
    """IMEX Crank–Nicolson for ``u_t = α·u_xx + ε·u − γ·u³``.

    The real Ginzburg–Landau / Allen–Cahn shape: diffusion is treated
    implicitly (Crank–Nicolson, unconditionally stable) and the cubic
    reaction explicitly, so the step matrix stays linear and fixed —
    one bound session serves the whole simulation.  ``periodic=True``
    closes the domain into a ring: the cyclic-convention matrix of
    :func:`~repro.workloads.pde.periodic_heat_coefficients` binds a
    cyclic session, and the explicit stencil wraps via ``np.roll``.
    With ``periodic=False`` the Dirichlet identity rows hold the
    boundary values fixed (the reaction is not applied there).

    ``u0`` is ``(M, N)`` — ``M`` independent 1-D fields stepped as one
    batch, the library's native workload shape.
    """

    def __init__(
        self,
        u0,
        alpha: float,
        dt: float,
        dx: float = 1.0,
        *,
        eps: float = 1.0,
        gamma: float = 1.0,
        periodic: bool = False,
        backend: str = "auto",
        workers: int | None = None,
        check: bool = True,
    ):
        u0 = np.asarray(u0, dtype=np.float64)
        if u0.ndim != 2:
            raise ValueError(f"u0 must be (M, N), got {u0.ndim}-D")
        self.u = np.ascontiguousarray(u0)
        m, n = self.u.shape
        self.alpha, self.dt, self.dx = alpha, dt, dx
        self.eps, self.gamma = eps, gamma
        self.periodic = periodic
        self.t = 0.0
        self.steps = 0
        if periodic:
            a, b, c = periodic_heat_coefficients(m, n, alpha, dt, dx)
        else:
            a, b, c = crank_nicolson_coefficients(m, n, alpha, dt, dx)
        self._session = bind_via(
            a, b, c, np.zeros_like(b),
            backend=backend, periodic=periodic,
            workers=workers, check=check, fingerprint=True,
        )
        self._r = alpha * dt / (2.0 * dx * dx)
        self._d = np.empty_like(self.u)
        self._react = np.empty_like(self.u)
        self._scratch = np.empty_like(self.u)

    def _reaction(self, u: np.ndarray, out: np.ndarray) -> np.ndarray:
        """``Δt·(ε·u − γ·u³)`` evaluated in place into ``out``."""
        np.multiply(u, u, out=out)
        out *= u                       # u³
        out *= -self.gamma
        out += self.eps * u
        out *= self.dt
        return out

    def _rhs(self, u: np.ndarray) -> np.ndarray:
        """The explicit half, in place into ``self._d``.

        Operation-for-operation the spec functions
        :func:`~repro.workloads.pde.crank_nicolson_rhs` /
        :func:`~repro.workloads.pde.periodic_heat_rhs`, evaluated
        through reused scratch instead of fresh allocations — the
        values are bitwise identical (same ufuncs, same order).
        """
        r, d, s = self._r, self._d, self._scratch
        if self.periodic:
            d[:, 0] = u[:, -1]           # np.roll(u, 1, axis=1)
            d[:, 1:] = u[:, :-1]
            d *= r
            np.multiply(u, 1.0 - 2.0 * r, out=s)
            np.add(d, s, out=d)
            s[:, :-1] = u[:, 1:]         # np.roll(u, -1, axis=1)
            s[:, -1] = u[:, 0]
            s *= r
            np.add(d, s, out=d)
        else:
            di, si = d[:, 1:-1], s[:, 1:-1]
            np.multiply(u[:, :-2], r, out=di)
            np.multiply(u[:, 1:-1], 1.0 - 2.0 * r, out=si)
            np.add(di, si, out=di)
            np.multiply(u[:, 2:], r, out=si)
            np.add(di, si, out=di)
            d[:, 0] = u[:, 0]
            d[:, -1] = u[:, -1]
        return d

    def step(self) -> np.ndarray:
        """Advance one Δt; returns the updated field (owned by self)."""
        u = self.u
        d = self._rhs(u)
        if self.periodic:
            d += self._reaction(u, self._react)
        else:
            react = self._reaction(u, self._react)
            d[:, 1:-1] += react[:, 1:-1]  # Dirichlet rows stay pinned
        # the sweep stages d before writing its output, and u is not a
        # sweep input — solving straight into the field is safe
        self._session.step(d, out=self.u)
        self.t += self.dt
        self.steps += 1
        return self.u

    def run(self, n_steps: int) -> np.ndarray:
        """Advance ``n_steps`` and return the field."""
        for _ in range(n_steps):
            self.step()
        return self.u

    def reference_step(self, u: np.ndarray) -> np.ndarray:
        """The same IMEX step through a dense solve."""
        u = np.asarray(u, dtype=np.float64)
        m, n = u.shape
        r = self.alpha * self.dt / (2.0 * self.dx * self.dx)
        react = self.dt * (self.eps * u - self.gamma * u**3)
        if self.periodic:
            A = np.zeros((n, n))
            idx = np.arange(n)
            A[idx, idx] = 1.0 + 2.0 * r
            A[idx, (idx + 1) % n] = -r
            A[idx, (idx - 1) % n] = -r
            d = periodic_heat_rhs(u, self.alpha, self.dt, self.dx) + react
        else:
            A = np.zeros((n, n))
            idx = np.arange(1, n - 1)
            A[idx, idx] = 1.0 + 2.0 * r
            A[idx, idx + 1] = -r
            A[idx, idx - 1] = -r
            A[0, 0] = 1.0
            A[n - 1, n - 1] = 1.0
            d = crank_nicolson_rhs(u, self.alpha, self.dt, self.dx)
            d[:, 1:-1] += react[:, 1:-1]
        return np.linalg.solve(A, d.T).T

    def close(self) -> None:
        """Release the bound session."""
        self._session.close()

    def __enter__(self) -> "CrankNicolsonCubic":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
