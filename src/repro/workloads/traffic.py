"""Small-request traffic shapes for the service tier.

Real solver traffic (per-frame physics lines, ADI sweeps split across
request handlers, ensemble members stepping one matrix) arrives as
*many small compatible batches*, not one large one.  These generators
produce that shape deterministically, for the service benchmark, the
``serve-stats`` CLI burst, and tests:

* :func:`small_request_traffic` — independent diagonally dominant
  fragments, one tuple per request, round-robin across ``tenants``;
* :func:`shared_matrix_traffic` — one coefficient set, many right-hand
  sides (the prepared/fingerprint shape: a time-stepping ensemble).
"""

from __future__ import annotations

import numpy as np

from repro.workloads.generators import random_batch

__all__ = ["shared_matrix_traffic", "small_request_traffic"]


def small_request_traffic(
    requests: int,
    m: int,
    n: int,
    *,
    tenants: int = 1,
    dtype=np.float64,
    seed: int = 0,
):
    """``requests`` independent ``(M, N)`` fragments with tenant labels.

    Returns a list of ``(tenant, (a, b, c, d))`` tuples — every
    fragment diagonally dominant, all sharing one ``(m, n, dtype)``
    signature so a coalescing service can group them.  Tenants are
    assigned round-robin (``"tenant-0" ... "tenant-{tenants-1}"``).
    """
    if requests < 1:
        raise ValueError(f"requests must be >= 1, got {requests}")
    if tenants < 1:
        raise ValueError(f"tenants must be >= 1, got {tenants}")
    out = []
    for i in range(requests):
        batch = random_batch(m, n, dtype=dtype, seed=seed + i)
        out.append((f"tenant-{i % tenants}", batch))
    return out


def shared_matrix_traffic(
    requests: int,
    m: int,
    n: int,
    *,
    tenants: int = 1,
    dtype=np.float64,
    seed: int = 0,
):
    """One coefficient set, ``requests`` fresh right-hand sides.

    The fingerprint-friendly shape: every request solves the *same*
    matrix (identical ``a, b, c`` arrays — same objects, so digesting
    them is cheap and cache keys collide as intended) against its own
    RHS.  Returns ``(a, b, c)`` plus a list of ``(tenant, d)`` pairs.
    """
    if requests < 1:
        raise ValueError(f"requests must be >= 1, got {requests}")
    if tenants < 1:
        raise ValueError(f"tenants must be >= 1, got {tenants}")
    a, b, c, _ = random_batch(m, n, dtype=dtype, seed=seed)
    rng = np.random.default_rng(seed + 1)
    ds = [
        (f"tenant-{i % tenants}", rng.standard_normal((m, n)).astype(dtype))
        for i in range(requests)
    ]
    return (a, b, c), ds
