"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.linalg import solve_banded


def make_batch(m, n, dtype=np.float64, seed=0, dominance=3.0):
    """Random strictly diagonally dominant (M, N) batch."""
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, n)).astype(dtype)
    c = rng.standard_normal((m, n)).astype(dtype)
    a[:, 0] = 0.0
    c[:, -1] = 0.0
    b = (dominance + np.abs(a) + np.abs(c)).astype(dtype)
    d = rng.standard_normal((m, n)).astype(dtype)
    return a, b, c, d


def make_system(n, dtype=np.float64, seed=0, dominance=3.0):
    """Random strictly diagonally dominant single system."""
    a, b, c, d = make_batch(1, n, dtype=dtype, seed=seed, dominance=dominance)
    return a[0], b[0], c[0], d[0]


def reference_solve(a, b, c, d):
    """LAPACK banded reference for an (M, N) batch."""
    a = np.atleast_2d(a)
    b = np.atleast_2d(b)
    c = np.atleast_2d(c)
    d = np.atleast_2d(d)
    m, n = b.shape
    out = np.empty((m, n), dtype=np.float64)
    ab = np.zeros((3, n))
    for i in range(m):
        ab[0, 1:] = c[i, :-1]
        ab[1, :] = b[i]
        ab[2, :-1] = a[i, 1:]
        out[i] = solve_banded((1, 1), ab, d[i])
    return out


def max_err(x, x_ref):
    """Worst scaled componentwise error."""
    x = np.asarray(x, dtype=np.float64)
    x_ref = np.asarray(x_ref, dtype=np.float64)
    return float(np.max(np.abs(x - x_ref) / np.maximum(np.abs(x_ref), 1.0)))


@pytest.fixture
def rng():
    """Deterministic RNG for ad-hoc randomness in tests."""
    return np.random.default_rng(1234)
