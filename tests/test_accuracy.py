"""Numerical-accuracy study: the qualitative conclusions are pinned."""

import numpy as np
import pytest

from repro.analysis.accuracy import (
    ALGORITHMS,
    dominance_sweep,
    measure,
    poisson_sweep,
)
from repro.workloads.generators import random_batch


@pytest.mark.parametrize("name", list(ALGORITHMS))
def test_backward_stability_on_dominant(name):
    """Every algorithm is backward stable on dominant fp64 systems."""
    a, b, c, d = random_batch(4, 512, seed=1)
    row = measure(name, a, b, c, d)
    assert row["residual"] < 1e-14
    assert row["forward_error"] < 1e-10


def test_unknown_algorithm_rejected():
    a, b, c, d = random_batch(1, 8)
    with pytest.raises(ValueError):
        measure("gauss", a, b, c, d)


def test_poisson_residuals_stay_small():
    """Residuals stay near machine epsilon even as conditioning grows."""
    rows = poisson_sweep(sizes=(64, 512, 2048))
    for r in rows:
        assert r["residual"] < 1e-12, r


def test_poisson_forward_error_grows_with_n():
    """Forward error tracks the n²-growing condition number."""
    rows = poisson_sweep(sizes=(64, 4096))
    for name in ALGORITHMS:
        small = [r for r in rows if r["algorithm"] == name and r["n"] == 64]
        big = [r for r in rows if r["algorithm"] == name and r["n"] == 4096]
        assert big[0]["forward_error"] >= small[0]["forward_error"] / 10


def test_dominance_degradation_graceful():
    """Shrinking the margin degrades forward error but never explodes
    the residual (pivot-free elimination stays benign while dominant)."""
    rows = dominance_sweep(margins=(2.0, 1e-6))
    for name in ALGORITHMS:
        tight = [
            r for r in rows if r["algorithm"] == name and r["margin"] == 1e-6
        ][0]
        assert np.isfinite(tight["forward_error"])
        assert tight["residual"] < 1e-10


def test_float32_residual_scale():
    """fp32 residuals land near fp32 epsilon, ~2^29 above fp64's."""
    a64, b64, c64, d64 = random_batch(4, 256, seed=2)
    a32, b32, c32, d32 = random_batch(4, 256, dtype=np.float32, seed=2)
    for name in ("thomas", "pcr", "hybrid"):
        r64 = measure(name, a64, b64, c64, d64)["residual"]
        r32 = measure(name, a32, b32, c32, d32)["residual"]
        assert r32 < 1e-5
        assert r32 > r64


def test_parallel_algorithms_track_thomas():
    """On the hard Poisson case, CR/PCR/hybrid lose ~2 digits to Thomas
    (more arithmetic, same math); recursive doubling — whose Möbius scan
    is known to be the least accurate of the family on ill-conditioned
    systems — stays within ~5 digits.  All remain far better than fp32
    would allow, and all residuals stay at machine level
    (test_poisson_residuals_stay_small)."""
    rows = poisson_sweep(sizes=(1024,))
    thomas = [r for r in rows if r["algorithm"] == "thomas"][0]["forward_error"]
    floor = max(thomas, 1e-15)
    for name in ("pcr", "hybrid", "cr"):
        err = [r for r in rows if r["algorithm"] == name][0]["forward_error"]
        assert err < 1e3 * floor, (name, err, thomas)
    rd = [r for r in rows if r["algorithm"] == "rd"][0]["forward_error"]
    assert rd < 1e6 * floor
    assert rd < 1e-8  # still a usable answer in absolute terms
