"""Vendor-style API adapters (LAPACK gtsv / cuSPARSE gtsv2StridedBatch)."""

import numpy as np
import pytest

from repro.api import gtsv, gtsv_nopivot, gtsv_strided_batch

from .conftest import make_system, max_err, reference_solve


def _lapack_form(n, seed=0):
    a, b, c, d = make_system(n, seed=seed)
    return a[1:], b, c[:-1], d, (a, b, c)


def test_gtsv_single_rhs():
    dl, dd, du, rhs, (a, b, c) = _lapack_form(64, seed=1)
    x = gtsv(dl, dd, du, rhs)
    assert x.shape == (64,)
    assert max_err(x[None], reference_solve(a, b, c, rhs)) < 1e-10


def test_gtsv_multiple_rhs():
    n, nrhs = 48, 3
    dl, dd, du, _, (a, b, c) = _lapack_form(n, seed=2)
    rng = np.random.default_rng(0)
    B = rng.standard_normal((n, nrhs))
    X = gtsv(dl, dd, du, B)
    assert X.shape == (n, nrhs)
    for j in range(nrhs):
        assert max_err(X[:, j][None], reference_solve(a, b, c, B[:, j])) < 1e-10


def test_gtsv_matches_scipy_lapack():
    from scipy.linalg import solve_banded

    n = 100
    dl, dd, du, rhs, _ = _lapack_form(n, seed=3)
    ab = np.zeros((3, n))
    ab[0, 1:] = du
    ab[1, :] = dd
    ab[2, :-1] = dl
    ref = solve_banded((1, 1), ab, rhs)
    assert np.allclose(gtsv(dl, dd, du, rhs), ref, atol=1e-10)


def test_gtsv_shape_validation():
    dl, dd, du, rhs, _ = _lapack_form(16, seed=4)
    with pytest.raises(ValueError, match="n-1"):
        gtsv(dl[:-1], dd, du, rhs)
    with pytest.raises(ValueError, match="B must be"):
        gtsv(dl, dd, du, np.zeros((17, 2)))


def test_gtsv_nopivot_alias():
    dl, dd, du, rhs, _ = _lapack_form(32, seed=5)
    assert np.array_equal(gtsv(dl, dd, du, rhs), gtsv_nopivot(dl, dd, du, rhs))


def test_strided_batch():
    m, n = 8, 64
    rng = np.random.default_rng(1)
    a2 = rng.standard_normal((m, n))
    c2 = rng.standard_normal((m, n))
    b2 = 4.0 + np.abs(a2) + np.abs(c2)
    d2 = rng.standard_normal((m, n))
    dl = a2.reshape(-1).copy()
    dd = b2.reshape(-1).copy()
    du = c2.reshape(-1).copy()
    x = d2.reshape(-1).copy()
    out = gtsv_strided_batch(dl, dd, du, x, batch_count=m, batch_stride=n)
    assert out is x  # overwritten in place, cuSPARSE-style
    a2p = a2.copy()
    a2p[:, 0] = 0.0
    c2p = c2.copy()
    c2p[:, -1] = 0.0
    ref = reference_solve(a2p, b2, c2p, d2)
    assert max_err(x.reshape(m, n), ref) < 1e-10


def test_strided_batch_ignores_pad_entries():
    """dl[i*stride] and du[i*stride+n-1] must be ignored (cuSPARSE rule)."""
    m, n = 4, 32
    rng = np.random.default_rng(2)
    a2 = rng.standard_normal((m, n))
    c2 = rng.standard_normal((m, n))
    b2 = 4.0 + np.abs(a2) + np.abs(c2)
    d2 = rng.standard_normal((m, n))
    dl = a2.reshape(-1).copy()
    du = c2.reshape(-1).copy()
    x1 = d2.reshape(-1).copy()
    gtsv_strided_batch(dl, b2.reshape(-1), du, x1, m, n)
    # poison the pad entries: result must not change
    dl2 = dl.copy()
    du2 = du.copy()
    dl2[::n] = 1e9
    du2[n - 1 :: n] = -1e9
    x2 = d2.reshape(-1).copy()
    gtsv_strided_batch(dl2, b2.reshape(-1), du2, x2, m, n)
    assert np.array_equal(x1, x2)


def test_strided_batch_validation():
    with pytest.raises(ValueError, match=">= 1"):
        gtsv_strided_batch(np.zeros(4), np.ones(4), np.zeros(4), np.zeros(4), 0, 4)
    with pytest.raises(ValueError, match="elements"):
        gtsv_strided_batch(np.zeros(4), np.ones(8), np.zeros(8), np.zeros(8), 2, 4)
