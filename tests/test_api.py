"""Vendor-style API adapters (LAPACK gtsv / cuSPARSE gtsv2StridedBatch)."""

import numpy as np
import pytest

from repro.api import gtsv, gtsv_cyclic, gtsv_nopivot, gtsv_strided_batch

from .conftest import make_system, max_err, reference_solve


def _lapack_form(n, seed=0):
    a, b, c, d = make_system(n, seed=seed)
    return a[1:], b, c[:-1], d, (a, b, c)


def test_gtsv_single_rhs():
    dl, dd, du, rhs, (a, b, c) = _lapack_form(64, seed=1)
    x = gtsv(dl, dd, du, rhs)
    assert x.shape == (64,)
    assert max_err(x[None], reference_solve(a, b, c, rhs)) < 1e-10


def test_gtsv_multiple_rhs():
    n, nrhs = 48, 3
    dl, dd, du, _, (a, b, c) = _lapack_form(n, seed=2)
    rng = np.random.default_rng(0)
    B = rng.standard_normal((n, nrhs))
    X = gtsv(dl, dd, du, B)
    assert X.shape == (n, nrhs)
    for j in range(nrhs):
        assert max_err(X[:, j][None], reference_solve(a, b, c, B[:, j])) < 1e-10


def test_gtsv_matches_scipy_lapack():
    from scipy.linalg import solve_banded

    n = 100
    dl, dd, du, rhs, _ = _lapack_form(n, seed=3)
    ab = np.zeros((3, n))
    ab[0, 1:] = du
    ab[1, :] = dd
    ab[2, :-1] = dl
    ref = solve_banded((1, 1), ab, rhs)
    assert np.allclose(gtsv(dl, dd, du, rhs), ref, atol=1e-10)


def test_gtsv_shape_validation():
    dl, dd, du, rhs, _ = _lapack_form(16, seed=4)
    with pytest.raises(ValueError, match="n-1"):
        gtsv(dl[:-1], dd, du, rhs)
    with pytest.raises(ValueError, match="B must be"):
        gtsv(dl, dd, du, np.zeros((17, 2)))


def test_gtsv_nopivot_alias():
    dl, dd, du, rhs, _ = _lapack_form(32, seed=5)
    assert np.array_equal(gtsv(dl, dd, du, rhs), gtsv_nopivot(dl, dd, du, rhs))


def test_strided_batch():
    m, n = 8, 64
    rng = np.random.default_rng(1)
    a2 = rng.standard_normal((m, n))
    c2 = rng.standard_normal((m, n))
    b2 = 4.0 + np.abs(a2) + np.abs(c2)
    d2 = rng.standard_normal((m, n))
    dl = a2.reshape(-1).copy()
    dd = b2.reshape(-1).copy()
    du = c2.reshape(-1).copy()
    x = d2.reshape(-1).copy()
    out = gtsv_strided_batch(dl, dd, du, x, batch_count=m, batch_stride=n)
    assert out is x  # overwritten in place, cuSPARSE-style
    a2p = a2.copy()
    a2p[:, 0] = 0.0
    c2p = c2.copy()
    c2p[:, -1] = 0.0
    ref = reference_solve(a2p, b2, c2p, d2)
    assert max_err(x.reshape(m, n), ref) < 1e-10


def test_strided_batch_ignores_pad_entries():
    """dl[i*stride] and du[i*stride+n-1] must be ignored (cuSPARSE rule)."""
    m, n = 4, 32
    rng = np.random.default_rng(2)
    a2 = rng.standard_normal((m, n))
    c2 = rng.standard_normal((m, n))
    b2 = 4.0 + np.abs(a2) + np.abs(c2)
    d2 = rng.standard_normal((m, n))
    dl = a2.reshape(-1).copy()
    du = c2.reshape(-1).copy()
    x1 = d2.reshape(-1).copy()
    gtsv_strided_batch(dl, b2.reshape(-1), du, x1, m, n)
    # poison the pad entries: result must not change
    dl2 = dl.copy()
    du2 = du.copy()
    dl2[::n] = 1e9
    du2[n - 1 :: n] = -1e9
    x2 = d2.reshape(-1).copy()
    gtsv_strided_batch(dl2, b2.reshape(-1), du2, x2, m, n)
    assert np.array_equal(x1, x2)


def test_strided_batch_validation():
    with pytest.raises(ValueError, match=">= 1"):
        gtsv_strided_batch(np.zeros(4), np.ones(4), np.zeros(4), np.zeros(4), 0, 4)
    with pytest.raises(ValueError, match="elements"):
        gtsv_strided_batch(np.zeros(4), np.ones(8), np.zeros(8), np.zeros(8), 2, 4)


def test_gtsv_n1_scalar_system():
    x = gtsv(np.array([]), np.array([2.0]), np.array([]), np.array([6.0]))
    assert x.shape == (1,)
    assert np.allclose(x, 3.0)


def test_gtsv_n1_multiple_rhs():
    X = gtsv([], [4.0], [], np.array([[4.0, 8.0, 12.0]]))
    assert X.shape == (1, 3)
    assert np.allclose(X, [[1.0, 2.0, 3.0]])


def test_gtsv_n1_zero_diagonal_raises():
    with pytest.raises(ValueError, match="main diagonal"):
        gtsv([], [0.0], [], [1.0])


def test_gtsv_n1_rejects_nonempty_offdiagonals():
    with pytest.raises(ValueError, match="n-1 = 0"):
        gtsv([1.0], [2.0], [], [1.0])


def test_gtsv_empty_diagonal_rejected():
    with pytest.raises(ValueError, match="non-empty"):
        gtsv([], [], [], [])


def test_gtsv_fortran_ordered_B():
    n, nrhs = 40, 3
    dl, dd, du, _, _ = _lapack_form(n, seed=6)
    rng = np.random.default_rng(3)
    B = rng.standard_normal((n, nrhs))
    XC = gtsv(dl, dd, du, B)
    XF = gtsv(dl, dd, du, np.asfortranarray(B))
    assert np.array_equal(XF, XC)
    assert XF.flags.c_contiguous


def test_gtsv_strided_and_transposed_B():
    n, nrhs = 40, 3
    dl, dd, du, _, _ = _lapack_form(n, seed=7)
    rng = np.random.default_rng(4)
    wide = rng.standard_normal((n, 2 * nrhs))
    strided = wide[:, ::2]                      # non-contiguous columns
    assert not strided.flags.c_contiguous
    ref = gtsv(dl, dd, du, np.ascontiguousarray(strided))
    assert np.array_equal(gtsv(dl, dd, du, strided), ref)
    transposed = np.ascontiguousarray(strided.T).T  # T-view of C-array
    assert np.array_equal(gtsv(dl, dd, du, transposed), ref)


def test_gtsv_backend_selection():
    import repro

    dl, dd, du, rhs, _ = _lapack_form(64, seed=8)
    x_auto = gtsv(dl, dd, du, rhs)
    x_ref = gtsv(dl, dd, du, rhs, backend="numpy")
    assert repro.last_trace().backend == "numpy"
    assert np.array_equal(x_auto, x_ref)


def test_strided_batch_rejects_list_x():
    with pytest.raises(TypeError, match="overwritten in place"):
        gtsv_strided_batch(
            np.zeros(4), np.ones(4), np.zeros(4), [1.0, 1.0, 1.0, 1.0], 1, 4
        )


def test_strided_batch_rejects_integer_x():
    with pytest.raises(TypeError, match="float32/float64"):
        gtsv_strided_batch(
            np.zeros(4), np.ones(4), np.zeros(4), np.ones(4, dtype=np.int64), 1, 4
        )


def test_strided_batch_rejects_readonly_x():
    x = np.ones(4)
    x.flags.writeable = False
    with pytest.raises(ValueError, match="read-only"):
        gtsv_strided_batch(np.zeros(4), np.ones(4), np.zeros(4), x, 1, 4)


def test_strided_batch_stride_one():
    x = np.array([2.0, 6.0, -3.0])
    out = gtsv_strided_batch(
        np.zeros(3), np.array([2.0, 3.0, 3.0]), np.zeros(3), x, 3, 1
    )
    assert out is x
    assert np.allclose(x, [1.0, 2.0, -1.0])


def test_strided_batch_writes_through_noncontiguous_view():
    m, n = 4, 32
    rng = np.random.default_rng(9)
    a2 = rng.standard_normal((m, n))
    c2 = rng.standard_normal((m, n))
    b2 = 4.0 + np.abs(a2) + np.abs(c2)
    d2 = rng.standard_normal((m, n))
    ref = d2.reshape(-1).copy()
    gtsv_strided_batch(
        a2.reshape(-1).copy(), b2.reshape(-1).copy(), c2.reshape(-1).copy(),
        ref, m, n,
    )
    backing = np.zeros(2 * m * n)
    view = backing[::2]
    view[:] = d2.reshape(-1)
    got = gtsv_strided_batch(
        a2.reshape(-1).copy(), b2.reshape(-1).copy(), c2.reshape(-1).copy(),
        view, m, n,
    )
    assert got is view
    assert np.array_equal(backing[::2], ref)  # wrote through the view


# ---- cyclic adapter --------------------------------------------------------


def _cyclic_dense_1d(a, b, c):
    n = b.shape[0]
    A = np.zeros((n, n))
    A[np.arange(n), np.arange(n)] = b
    A[np.arange(1, n), np.arange(n - 1)] = a[1:]
    A[np.arange(n - 1), np.arange(1, n)] = c[:-1]
    A[0, n - 1] = a[0]
    A[n - 1, 0] = c[-1]
    return A


def _cyclic_system(n, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal(n)
    c = rng.standard_normal(n)
    b = 4.0 + np.abs(a) + np.abs(c)
    return a, b, c


def test_gtsv_cyclic_single_rhs():
    n = 48
    a, b, c = _cyclic_system(n, seed=10)
    rhs = np.random.default_rng(1).standard_normal(n)
    # vendor layout: corners ride in dl[0] / du[-1]
    x = gtsv_cyclic(a, b, c, rhs)
    assert x.shape == (n,)
    ref = np.linalg.solve(_cyclic_dense_1d(a, b, c), rhs)
    assert np.allclose(x, ref, atol=1e-10)


def test_gtsv_cyclic_multi_rhs_matches_columnwise():
    n, nrhs = 40, 5
    a, b, c = _cyclic_system(n, seed=11)
    B = np.random.default_rng(2).standard_normal((n, nrhs))
    X = gtsv_cyclic(a, b, c, B)
    assert X.shape == (n, nrhs)
    A = _cyclic_dense_1d(a, b, c)
    for j in range(nrhs):
        assert np.allclose(X[:, j], np.linalg.solve(A, B[:, j]), atol=1e-10)


def test_gtsv_cyclic_validation():
    a, b, c = _cyclic_system(16, seed=12)
    with pytest.raises(ValueError, match="full length"):
        gtsv_cyclic(a[:-1], b, c, np.zeros(16))
    with pytest.raises(ValueError, match="n >= 3"):
        gtsv_cyclic(np.ones(2), np.full(2, 3.0), np.ones(2), np.ones(2))
    with pytest.raises(ValueError):
        gtsv_cyclic(a, b, c, np.zeros((17,)))


def test_gtsv_cyclic_singular_guard():
    from repro.core.periodic import CyclicSingularError

    n = 16
    a = np.full(n, -1.0)
    b = np.full(n, 2.0)
    c = np.full(n, -1.0)
    with pytest.raises(CyclicSingularError):
        gtsv_cyclic(a, b, c, np.zeros(n))
    with pytest.warns(RuntimeWarning):
        x = gtsv_cyclic(a, b, c, np.zeros(n), check=False)
    assert np.isnan(x).all()


def test_gpsv_batch_matches_dense():
    from repro.api import gpsv_batch
    from repro.core.pentadiag import penta_to_dense
    from repro.workloads.generators import random_penta_batch

    e, a, b, c, f, d = random_penta_batch(3, 32, seed=5)
    x = gpsv_batch(e, a, b, c, f, d)
    assert x.shape == (3, 32)
    ref = np.linalg.solve(penta_to_dense(e, a, b, c, f), d[..., None])[..., 0]
    assert np.allclose(x, ref, atol=1e-9)


def test_gpsv_batch_fingerprint_bitwise():
    from repro.api import gpsv_batch
    from repro.workloads.generators import random_penta_batch

    e, a, b, c, f, d = random_penta_batch(4, 48, seed=8)
    cold = gpsv_batch(e, a, b, c, f, d, backend="engine", fingerprint=False)
    gpsv_batch(e, a, b, c, f, d, backend="engine", fingerprint=True)
    warm = gpsv_batch(e, a, b, c, f, d, backend="engine", fingerprint=True)
    assert np.array_equal(cold, warm)


def test_gtsv_block_batch_matches_dense():
    from repro.api import gtsv_block_batch
    from repro.core.blocktridiag import block_to_dense
    from repro.workloads.generators import random_block_batch

    A, Bd, C, d = random_block_batch(2, 12, block_size=3, seed=6)
    x = gtsv_block_batch(A, Bd, C, d)
    assert x.shape == (2, 12, 3)
    dense = block_to_dense(A, Bd, C)
    ref = np.linalg.solve(dense, d.reshape(2, -1)[..., None])[..., 0]
    assert np.allclose(x, ref.reshape(2, 12, 3), atol=1e-9)
