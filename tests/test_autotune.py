"""Trace-driven adaptive routing: model, router, calibration, safety.

The contracts under test:

* the :class:`PerformanceModel` folds traces into per-(cell, route)
  running means and persists bitwise (save -> load -> save);
* corrupt / foreign-version model files degrade to an empty model —
  the router falls back to the static heuristic, never raises;
* :class:`AdaptiveRouter` is *safe by construction*: it never selects
  a backend outside the capability-filtered candidates, never
  overrides caller-pinned knobs, and never applies a forced
  fingerprint tier without a numeric license;
* cold start and ``epsilon=0`` replay are fully deterministic and
  bitwise-identical to the static :class:`Router`;
* the ``rtol=`` contract auto-engages hybrid factorization reuse with
  the documented miss -> factored -> hit trace progression.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autotune import (
    MODEL_VERSION,
    AdaptiveRouter,
    ModelLoadError,
    PerformanceModel,
    calibrate,
    cell_key,
    cell_key_for,
    effective_fingerprint_tier,
    enable_adaptive_routing,
    disable_adaptive_routing,
    route_key,
)
from repro.autotune.calibrate import calibration_batch
from repro.autotune.router import candidate_routes
from repro.backends.registry import (
    Router,
    default_registry,
    reject_reason,
    solve_via,
)
from repro.backends.request import SolveRequest
from repro.core.transition import GTX480_HEURISTIC, candidate_ks


def _request(m=8, n=64, *, seed=0, dtype="float64", **opts):
    a, b, c, d = calibration_batch(m, n, dtype, seed=seed)
    return SolveRequest.build(a, b, c, d, coerced=True, **opts)


# ---------------------------------------------------------------------------
# PerformanceModel


def test_model_running_mean_and_best():
    model = PerformanceModel(min_samples=2)
    cell = "c"
    fast = {"backend": "engine", "k": 3, "workers": 1,
            "fingerprint": "auto", "ranks": 1}
    slow = {"backend": "numpy", "k": 0, "workers": 1,
            "fingerprint": "auto", "ranks": 1}
    model.observe(cell, fast, 1.0)
    assert model.best(cell) is None  # one sample is below min_samples
    model.observe(cell, fast, 3.0)
    model.observe(cell, slow, 5.0)
    model.observe(cell, slow, 5.0)
    route, stats = model.best(cell)
    assert route == fast
    assert stats.count == 2
    assert stats.mean_s == pytest.approx(2.0)
    assert model.observations(cell) == 4


def test_model_best_admissibility_filter():
    model = PerformanceModel(min_samples=1)
    cell = "c"
    model.observe(cell, {"backend": "a", "k": 0, "workers": 1,
                         "fingerprint": "auto"}, 1.0)
    model.observe(cell, {"backend": "b", "k": 0, "workers": 1,
                         "fingerprint": "auto"}, 2.0)
    route, _ = model.best(cell, admissible=lambda r: r["backend"] == "b")
    assert route["backend"] == "b"
    assert model.best(cell, admissible=lambda r: False) is None


def test_model_best_returns_copy():
    model = PerformanceModel(min_samples=1)
    model.observe("c", {"backend": "a", "k": 0, "workers": 1,
                        "fingerprint": "auto"}, 1.0)
    route, _ = model.best("c")
    route["backend"] = "mutated"
    route2, _ = model.best("c")
    assert route2["backend"] == "a"


def test_cell_key_bucketing():
    assert cell_key(8, 1024, "float64", False) == "M2^3|N2^10|float64|plain"
    assert cell_key(9, 1024, "float64", False) == "M2^3|N2^10|float64|plain"
    assert cell_key(16, 1024, "float64", False) == "M2^4|N2^10|float64|plain"
    assert cell_key(8, 1024, "float32", True) == "M2^3|N2^10|float32|cyclic"
    req = _request(m=12, n=100)
    assert cell_key_for(req) == "M2^3|N2^6|float64|plain"


def test_effective_fingerprint_tier_partitions_behaviour():
    assert effective_fingerprint_tier(True, None, "float64", 3) == "forced"
    assert effective_fingerprint_tier(False, 1e-8, "float64", 3) == "off"
    assert effective_fingerprint_tier(None, None, "float64", 3) == "auto"
    assert effective_fingerprint_tier(None, 1e-8, "float64", 3) == "auto+rtol"
    # at k = 0 the rtol contract changes nothing: both collapse to auto
    assert effective_fingerprint_tier(None, 1e-8, "float64", 0) == "auto"
    # below the dtype floor the license does not engage
    assert effective_fingerprint_tier(None, 1e-20, "float64", 3) == "auto"


# ---------------------------------------------------------------------------
# persistence


def test_model_roundtrip_bitwise(tmp_path):
    model = PerformanceModel(min_samples=3)
    for i, cell in enumerate(("c1", "c2")):
        for j in range(4):
            model.observe(
                cell,
                {"backend": "engine", "k": j, "workers": 1,
                 "fingerprint": "auto"},
                0.001 * (i + 1) * (j + 1) / 3.0,  # non-trivial floats
            )
    p1, p2 = tmp_path / "a.json", tmp_path / "b.json"
    model.save(p1)
    loaded = PerformanceModel.load(p1)
    assert loaded.min_samples == 3
    assert loaded.cells() == model.cells()
    loaded.save(p2)
    assert p1.read_bytes() == p2.read_bytes()


def test_model_load_missing_corrupt_and_foreign(tmp_path):
    # missing file: fresh model, no note
    model, note = PerformanceModel.load_or_new(tmp_path / "absent.json")
    assert model.cells() == [] and note is None

    # corrupt file: fresh model plus a note; strict load raises
    bad = tmp_path / "bad.json"
    bad.write_text("{this is not json")
    with pytest.raises(ModelLoadError):
        PerformanceModel.load(bad)
    model, note = PerformanceModel.load_or_new(bad)
    assert model.cells() == [] and note

    # foreign version: same degradation
    stale = tmp_path / "stale.json"
    stale.write_text(json.dumps({
        "kind": "repro-autotune-model", "version": MODEL_VERSION + 1,
        "cells": {},
    }))
    with pytest.raises(ModelLoadError, match="version"):
        PerformanceModel.load(stale)
    model, note = PerformanceModel.load_or_new(stale)
    assert model.cells() == [] and "version" in note

    # wrong kind
    alien = tmp_path / "alien.json"
    alien.write_text(json.dumps({"kind": "something-else", "version": 1}))
    model, note = PerformanceModel.load_or_new(alien)
    assert model.cells() == [] and "kind" in note


def test_adaptive_router_degrades_on_corrupt_model(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("not even close to json")
    router = AdaptiveRouter(model_path=str(bad))
    assert router.load_note  # problem surfaced, not raised
    # behaves exactly like the static router (cold everywhere)
    req = _request()
    candidates = default_registry().capable(req)
    chosen = router.select(req, list(candidates))
    static = Router().select(_request(), list(candidates))
    assert chosen.name == static.name
    assert req.decision.model == "cold"


# ---------------------------------------------------------------------------
# selection policy


def _calibrated(shapes=((8, 64),), **kwargs):
    model = PerformanceModel()
    calibrate(shapes, model=model, repeats=2, warmup_rounds=1, **kwargs)
    return model


def test_cold_start_is_bitwise_identical_to_static():
    reg = default_registry()
    a, b, c, d = calibration_batch(16, 128, seed=3)
    adaptive = AdaptiveRouter(PerformanceModel(), epsilon=0.5)
    try:
        reg.router = adaptive
        x_adaptive, trace = solve_via(a, b, c, d, coerced=True, registry=reg)
        assert trace.decision.router == "adaptive"
        assert trace.decision.model == "cold"
        reg.router = Router()
        x_static, trace_s = solve_via(a, b, c, d, coerced=True, registry=reg)
    finally:
        reg.router = Router()
    assert trace.backend == trace_s.backend
    assert trace.k == trace_s.k
    np.testing.assert_array_equal(x_adaptive, x_static)


def test_epsilon_zero_replay_is_deterministic():
    model = _calibrated()
    reg = default_registry()
    candidates = reg.capable(_request())

    def replay():
        router = AdaptiveRouter(model, epsilon=0.0)
        picks = []
        for _ in range(6):
            req = _request()
            router.select(req, list(candidates))
            picks.append((req.decision.chosen, dict(req.decision.route),
                          req.decision.explore))
        return picks

    first, second = replay(), replay()
    assert first == second
    assert not any(explore for _, _, explore in first)


def test_exploration_schedule_is_deterministic_counter():
    model = _calibrated()
    router = AdaptiveRouter(model, epsilon=0.5)
    reg = default_registry()
    candidates = reg.capable(_request())
    flags = []
    for _ in range(8):
        req = _request()
        router.select(req, list(candidates))
        flags.append(req.decision.explore)
    assert any(flags), "epsilon=0.5 never explored in 8 picks"
    # replay matches exactly (no PRNG anywhere)
    router2 = AdaptiveRouter(model, epsilon=0.5)
    flags2 = []
    for _ in range(8):
        req = _request()
        router2.select(req, list(candidates))
        flags2.append(req.decision.explore)
    assert flags == flags2


def test_exploit_applies_measured_best_and_stamps_decision():
    model = _calibrated(rtol=1e-9)
    cell = cell_key(8, 64, "float64", False)
    best_route, best_stats = model.best(cell)
    router = AdaptiveRouter(model, epsilon=0.0)
    req = _request(rtol=1e-9)
    backend = router.select(req, list(default_registry().capable(req)))
    assert backend.name == best_route["backend"]
    d = req.decision
    assert d.router == "adaptive" and d.model == "hit" and not d.explore
    assert d.cell == cell
    assert d.route["backend"] == best_route["backend"]
    assert f"{best_stats.count} samples" in d.reason


def test_router_never_overrides_pinned_knobs():
    model = _calibrated(rtol=1e-9)
    router = AdaptiveRouter(model, epsilon=0.0)
    reg = default_registry()
    # pin k: selection must keep it even though the model prefers another
    req = _request(k=0, rtol=1e-9)
    router.select(req, list(reg.capable(req)))
    assert req.k == 0
    # pin fingerprint off: must not be flipped on
    req = _request(fingerprint=False, rtol=1e-9)
    router.select(req, list(reg.capable(req)))
    assert req.fingerprint is False


def test_forced_tier_needs_license():
    """A k>0 forced-fingerprint route needs an rtol license to apply."""
    model = _calibrated(rtol=1e-9)
    cell = cell_key(8, 64, "float64", False)
    assert any(
        json.loads(rk).get("fingerprint") in ("forced", "auto+rtol")
        and json.loads(rk).get("k", 0) != 0
        for rk in model.routes(cell)
    ), "calibration produced no licensed hybrid-reuse routes"
    router = AdaptiveRouter(model, epsilon=0.0)
    req = _request()  # no rtol
    router.select(req, list(default_registry().capable(req)))
    applied = req.decision.route
    if applied.get("fingerprint") == "forced":
        assert applied.get("k", 0) == 0
    # with the license, reuse tiers are in play
    req2 = _request(rtol=1e-9)
    router.select(req2, list(default_registry().capable(req2)))
    assert req2.decision.model == "hit"


@settings(max_examples=30, deadline=None)
@given(
    m=st.integers(min_value=1, max_value=64),
    n=st.integers(min_value=4, max_value=256),
    dtype=st.sampled_from(["float64", "float32"]),
    epsilon=st.sampled_from([0.0, 0.3, 1.0]),
    rtol=st.sampled_from([None, 1e-3, 1e-9]),
    periodic=st.booleans(),
)
def test_adaptive_never_selects_incapable_backend(
    m, n, dtype, epsilon, rtol, periodic
):
    """Whatever the model says, selection respects capabilities."""
    reg = default_registry()
    # a model polluted with backends/routes that do not exist or are
    # wrong for most requests — selection must stay admissible
    model = PerformanceModel(min_samples=1)
    for cell_m in (1, 8, 32, 64):
        for cell_n in (4, 64, 256):
            cell = cell_key(cell_m, cell_n, dtype, periodic)
            model.observe(cell, {"backend": "nonexistent", "k": 1,
                                 "workers": 1, "fingerprint": "auto"}, 1e-9)
            model.observe(cell, {"backend": "numpy", "k": 2, "workers": 8,
                                 "fingerprint": "forced"}, 1e-9)
            model.observe(cell, {"backend": "engine", "k": 2, "workers": 1,
                                 "fingerprint": "forced"}, 1e-8)
    router = AdaptiveRouter(model, epsilon=epsilon)
    opts = {} if rtol is None else {"rtol": rtol}
    req = _request(m=m, n=n, dtype=dtype, periodic=periodic, **opts)
    candidates = reg.capable(req)
    chosen = router.select(req, list(candidates))
    assert chosen.name in {b.name for b in candidates}
    # and the refined request still passes the chosen backend's filter
    assert reject_reason(chosen.capabilities(), req) is None


# ---------------------------------------------------------------------------
# candidate routes / calibration


def test_candidate_ks_brackets_the_table():
    ks = candidate_ks(8, 1024)
    table_k = GTX480_HEURISTIC.k_for(8, 1024)
    assert 0 in ks
    assert table_k in ks
    assert ks == tuple(sorted(set(ks)))


def test_candidate_routes_respect_contracts():
    reg = default_registry()
    req = _request(m=8, n=64)
    routes = candidate_routes(req, reg.capable(req))
    assert routes, "no candidate routes for a plain request"
    names = {r["backend"] for r in routes}
    assert "gpusim" not in names  # simulated backends are never measured
    # no rtol: hybrid (k>0) routes must not carry reuse tiers
    for r in routes:
        if r["k"] != 0:
            assert r["fingerprint"] == "auto"
    # pinned k stays pinned
    req_k = _request(m=8, n=64, k=2)
    assert {r["k"] for r in candidate_routes(req_k, reg.capable(req_k))} == {2}
    # rtol license adds reuse tiers on k>0
    req_rtol = _request(m=8, n=64, rtol=1e-9)
    tiers = {
        (r["k"] != 0, r["fingerprint"])
        for r in candidate_routes(req_rtol, reg.capable(req_rtol))
    }
    assert (True, "auto+rtol") in tiers
    assert (True, "forced") in tiers


def test_calibrate_fills_the_model_and_routes_from_it():
    model = _calibrated(shapes=((8, 64),), rtol=1e-9)
    cell = cell_key(8, 64, "float64", False)
    assert model.cells() == [cell]
    assert model.observations(cell) >= 2 * len(model.routes(cell)) > 0
    assert model.best(cell) is not None


def test_enable_disable_adaptive_routing(tmp_path):
    reg = default_registry()
    try:
        router = enable_adaptive_routing(
            str(tmp_path / "m.json"), epsilon=0.0, registry=reg
        )
        assert reg.router is router
        a, b, c, d = calibration_batch(8, 64, seed=11)
        _, trace = solve_via(a, b, c, d, coerced=True, registry=reg)
        assert trace.decision.router == "adaptive"
        # observe() hook fed the dispatch back into the model
        assert router.model.observations(cell_key(8, 64, "float64", False)) == 1
        router.save()
        assert (tmp_path / "m.json").exists()
    finally:
        static = disable_adaptive_routing(registry=reg)
        assert reg.router is static


def test_engine_router_model_path(tmp_path):
    from repro.engine import ExecutionEngine

    assert ExecutionEngine().router_model_path is None
    eng = ExecutionEngine(cache_dir=str(tmp_path))
    path = eng.router_model_path
    assert path is not None and path.endswith("router_model.json")
    assert str(tmp_path) in path


# ---------------------------------------------------------------------------
# rtol contract on the engine


def test_rtol_auto_engages_hybrid_reuse_progression():
    """miss -> factored -> hit across repeated rtol solves at k > 0."""
    a, b, c, d = calibration_batch(8, 128, seed=23)
    states = []
    for _ in range(3):
        _, trace = solve_via(a, b, c, d, backend="engine", coerced=True,
                             k=3, rtol=1e-9)
        states.append((trace.factorization, trace.rhs_only))
    assert states[0] == ("miss", False)
    # the factoring solve already reuses its fresh factorization for
    # the RHS pass, so rhs_only flips on one solve early
    assert states[1] == ("factored", True)
    assert states[2] == ("hit", True)
    # the reused answer matches a fresh solve to the contract
    x_reused, _ = solve_via(a, b, c, d, backend="engine", coerced=True,
                            k=3, rtol=1e-9)
    x_fresh, _ = solve_via(a, b, c, d, backend="engine", coerced=True,
                           k=3, fingerprint=False)
    np.testing.assert_allclose(x_reused, x_fresh, rtol=1e-9)


def test_rtol_below_floor_does_not_engage():
    a, b, c, d = calibration_batch(8, 128, seed=29)
    for _ in range(3):
        _, trace = solve_via(a, b, c, d, backend="engine", coerced=True,
                             k=3, rtol=1e-16)
        assert trace.rhs_only is False


def test_rtol_validation():
    with pytest.raises(ValueError, match="rtol"):
        _request(rtol=-1.0)
    with pytest.raises(ValueError, match="rtol"):
        _request(rtol=float("nan"))


def test_route_key_is_stable():
    r1 = {"backend": "engine", "k": 1, "workers": 1, "fingerprint": "auto"}
    r2 = {"fingerprint": "auto", "workers": 1, "k": 1, "backend": "engine"}
    assert route_key(r1) == route_key(r2)
