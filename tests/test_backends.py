"""Backend dispatch layer: registry negotiation, router, cross-backend
agreement, and per-solve traces.

The engine and threaded backends must be *bitwise* identical to the
single-call NumPy reference.  The gpusim backend routes its numerics
through the engine too, but its device planner may choose a different
transition ``k`` / window split than the reference heuristic (shared
memory caps it), so agreement there is to rounding tolerance, not
bitwise — that tolerance is part of its contract.
"""

import numpy as np
import pytest

import repro
from repro.backends import (
    BackendBase,
    BackendError,
    BackendRegistry,
    Capabilities,
    EngineBackend,
    NumpyReferenceBackend,
    Router,
    SolveRequest,
    clear_last_trace,
    default_registry,
    solve_via,
)
from repro.core.periodic import CyclicSingularError, solve_periodic_batch
from repro.workloads.generators import random_batch

ALL_BACKENDS = ("engine", "threaded", "numpy", "gpusim")
#: gpusim's device planner may re-plan k/windows → rounding-level drift.
TOL = {np.float64: 1e-12, np.float32: 1e-4}


def _batch(m=12, n=256, dtype=np.float64, seed=3):
    return random_batch(m, n, dtype=dtype, seed=seed)


def _cyclic_batch(m, n, dtype=np.float64, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, n)).astype(dtype)
    c = rng.standard_normal((m, n)).astype(dtype)
    b = (4.0 + np.abs(a) + np.abs(c)).astype(dtype)
    d = rng.standard_normal((m, n)).astype(dtype)
    return a, b, c, d


# ---------------------------------------------------------------- registry


def test_registry_lists_all_five_backends():
    names = [b.name for b in default_registry().backends()]
    # priority order
    assert names == ["engine", "threaded", "distributed", "numpy", "gpusim"]


def test_auto_picks_the_engine():
    a, b, c, d = _batch()
    repro.solve_batch(a, b, c, d)
    assert repro.last_trace().backend == "engine"


def test_workers_route_to_threaded():
    a, b, c, d = _batch()
    x1 = repro.solve_batch(a, b, c, d)
    xw = repro.solve_batch(a, b, c, d, workers=3)
    trace = repro.last_trace()
    assert trace.backend == "threaded"
    assert trace.workers == 3
    assert np.array_equal(x1, xw)  # sharding is bitwise-invisible


@pytest.mark.parametrize("name", ALL_BACKENDS)
def test_named_backend_is_honoured(name):
    a, b, c, d = _batch()
    repro.solve_batch(a, b, c, d, backend=name)
    assert repro.last_trace().backend == name


def test_unknown_backend_name_is_a_clear_error():
    a, b, c, d = _batch(m=2, n=32)
    with pytest.raises(BackendError, match="unknown backend .*registered"):
        repro.solve_batch(a, b, c, d, backend="cuda")


def test_classic_algorithms_reject_backend_selection():
    a, b, c, d = _batch(m=2, n=32)
    with pytest.raises(TypeError, match="backend="):
        repro.solve_batch(a, b, c, d, algorithm="thomas", backend="engine")


def test_unknown_solve_option_is_a_type_error():
    a, b, c, d = _batch(m=2, n=32)
    with pytest.raises(TypeError, match="unknown solve option"):
        repro.solve_batch(a, b, c, d, tile=4)


# ------------------------------------------------- cross-backend agreement


@pytest.mark.parametrize("dtype", [np.float64, np.float32])
@pytest.mark.parametrize("k", [0, None], ids=["k0", "kheuristic"])
@pytest.mark.parametrize("backend", ["engine", "threaded", "gpusim"])
def test_cross_backend_agreement(backend, k, dtype):
    a, b, c, d = _batch(m=8, n=256, dtype=dtype)
    opts = {} if k is None else {"k": k}
    ref = repro.solve_batch(a, b, c, d, backend="numpy", **opts)
    x = repro.solve_batch(a, b, c, d, backend=backend, **opts)
    assert x.dtype == ref.dtype
    if backend == "gpusim" and k is None:
        # device plan may differ from the reference heuristic
        assert np.allclose(x, ref, rtol=TOL[dtype], atol=TOL[dtype])
    else:
        assert np.array_equal(x, ref)


@pytest.mark.parametrize("dtype", [np.float64, np.float32])
@pytest.mark.parametrize("backend", ["engine", "threaded", "gpusim"])
def test_cross_backend_agreement_periodic(backend, dtype):
    rng = np.random.default_rng(11)
    m, n = 4, 128
    a = rng.standard_normal((m, n)).astype(dtype)
    c = rng.standard_normal((m, n)).astype(dtype)
    b = (6.0 + np.abs(a) + np.abs(c)).astype(dtype)
    d = rng.standard_normal((m, n)).astype(dtype)
    ref = solve_periodic_batch(a, b, c, d, backend="numpy")
    x = solve_periodic_batch(a, b, c, d, backend=backend)
    if backend == "gpusim":
        assert np.allclose(x, ref, rtol=TOL[dtype], atol=TOL[dtype])
    else:
        assert np.array_equal(x, ref)


@pytest.mark.parametrize("dtype", [np.float64, np.float32])
@pytest.mark.parametrize("backend", ["engine", "threaded", "gpusim"])
def test_periodic_prepared_matches_unprepared(backend, dtype):
    # k = 0 pins the plan, so the cyclic RHS-only sweep (stored core
    # factorization + q + scale) must change no bits vs re-elimination
    a, b, c, d = _cyclic_batch(48, 96, dtype=dtype, seed=21)
    ref = solve_periodic_batch(
        a, b, c, d, backend=backend, k=0, fingerprint=False
    )
    solve_periodic_batch(a, b, c, d, backend=backend, k=0, fingerprint=True)
    x = solve_periodic_batch(
        a, b, c, d, backend=backend, k=0, fingerprint=True
    )
    trace = repro.last_trace()
    assert trace.backend == backend
    assert trace.periodic is True
    assert trace.factorization == "hit"
    assert trace.rhs_only is True
    assert x.dtype == ref.dtype
    assert np.array_equal(x, ref)


def test_periodic_trace_fields():
    a, b, c, d = _cyclic_batch(4, 64, seed=22)
    solve_periodic_batch(a, b, c, d)
    trace = repro.last_trace()
    assert trace.periodic is True
    assert trace.describe()["periodic"] is True
    assert any("cyclic" in s.name for s in trace.stages)
    # plain solves leave the flag down
    repro.solve_batch(*_batch(m=2, n=64))
    assert repro.last_trace().periodic is False


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_periodic_singular_raises_through_backends(backend):
    # the periodic Laplacian [-1, 2, -1] has the constant nullvector:
    # |1 + v·q| collapses and every backend must surface the guard
    n = 32
    a = np.full((2, n), -1.0)
    c = np.full((2, n), -1.0)
    b = np.full((2, n), 2.0)
    d = np.zeros((2, n))
    with pytest.raises(CyclicSingularError, match="row"):
        solve_periodic_batch(a, b, c, d, backend=backend)


def test_out_parameter_is_written_in_place():
    a, b, c, d = _batch(m=4, n=64)
    out = np.empty_like(d)
    x, trace = solve_via(a, b, c, d, out=out)
    assert x is out
    assert trace.backend == "engine"


# -------------------------------------------------- prepared vs unprepared


@pytest.mark.parametrize("backend", ["engine", "threaded", "gpusim"])
def test_prepared_matches_unprepared_bitwise_k0(backend):
    # k = 0 pins the plan, so the RHS-only sweep with stored
    # denominators must change no bits on any prepared-capable backend
    a, b, c, d = _batch(m=48, n=96, seed=41)
    ref = repro.solve_batch(a, b, c, d, backend=backend, k=0,
                            fingerprint=False)
    repro.solve_batch(a, b, c, d, backend=backend, k=0, fingerprint=True)
    x = repro.solve_batch(a, b, c, d, backend=backend, k=0, fingerprint=True)
    trace = repro.last_trace()
    assert trace.backend == backend
    assert trace.factorization == "hit"
    assert trace.rhs_only is True
    assert np.array_equal(x, ref)


@pytest.mark.parametrize("backend", ["engine", "threaded", "gpusim"])
def test_prepared_matches_unprepared_hybrid(backend):
    a, b, c, d = _batch(m=8, n=320, seed=42)
    ref = repro.solve_batch(a, b, c, d, backend=backend, k=4,
                            fingerprint=False)
    repro.solve_batch(a, b, c, d, backend=backend, k=4, fingerprint=True)
    x = repro.solve_batch(a, b, c, d, backend=backend, k=4, fingerprint=True)
    assert repro.last_trace().rhs_only is True
    assert np.allclose(x, ref, rtol=1e-10, atol=1e-13)


def test_fingerprint_true_rejects_numpy_backend():
    a, b, c, d = _batch(m=4, n=64, seed=43)
    with pytest.raises(BackendError, match="prepared"):
        repro.solve_batch(a, b, c, d, backend="numpy", fingerprint=True)


def test_fingerprint_true_negotiates_past_numpy():
    registry = BackendRegistry(router=Router())
    registry.register(NumpyReferenceBackend())
    registry.register(EngineBackend())
    a, b, c, d = _batch(m=4, n=64, seed=44)
    _, trace = solve_via(a, b, c, d, fingerprint=True, registry=registry)
    assert trace.backend == "engine"


def test_threaded_trace_merges_shard_stages():
    a, b, c, d = _batch(m=32, n=128, seed=45)
    repro.solve_batch(a, b, c, d, workers=4, fingerprint=False)
    trace = repro.last_trace()
    assert trace.backend == "threaded"
    # per-shard stage ledgers are merged into a critical-path view
    assert any("[4 shards]" in s.name for s in trace.stages)


# ------------------------------------------------------------- negotiation


class _Float64Only(BackendBase):
    """Test double: claims top priority but only supports float64."""

    name = "f64only"
    priority = 999

    def __init__(self):
        super().__init__()
        self._inner = NumpyReferenceBackend()

    def capabilities(self):
        return Capabilities(dtypes=("float64",), description="test double")

    def execute(self, request):
        outcome = self._inner.execute(request)
        outcome.trace.backend = self.name
        self._set_trace(outcome.trace)
        return outcome


def _test_registry():
    registry = BackendRegistry(router=Router())
    registry.register(_Float64Only())
    registry.register(EngineBackend())
    return registry


def test_named_backend_dtype_rejection_is_explicit():
    registry = _test_registry()
    a, b, c, d = _batch(m=2, n=64, dtype=np.float32)
    with pytest.raises(BackendError, match="float32"):
        solve_via(a, b, c, d, backend="f64only", registry=registry)


def test_auto_falls_back_past_incapable_backends():
    registry = _test_registry()
    a, b, c, d = _batch(m=2, n=64, dtype=np.float32)
    _, trace = solve_via(a, b, c, d, registry=registry)
    assert trace.backend == "engine"  # f64only outranks it but can't run

    a, b, c, d = _batch(m=2, n=64, dtype=np.float64)
    _, trace = solve_via(a, b, c, d, registry=registry)
    assert trace.backend == "f64only"  # highest capable priority wins


class _NoPeriodic(BackendBase):
    """Test double: top priority but cannot serve cyclic systems."""

    name = "noperiodic"
    priority = 999

    def __init__(self):
        super().__init__()
        self._inner = NumpyReferenceBackend()

    def capabilities(self):
        return Capabilities(periodic=False, description="test double")

    def execute(self, request):
        outcome = self._inner.execute(request)
        outcome.trace.backend = self.name
        self._set_trace(outcome.trace)
        return outcome


def test_periodic_capability_is_negotiated():
    registry = BackendRegistry(router=Router())
    registry.register(_NoPeriodic())
    registry.register(EngineBackend())
    a, b, c, d = _cyclic_batch(2, 48, seed=23)

    # named explicitly: the rejection reason is surfaced
    with pytest.raises(BackendError, match="periodic"):
        solve_via(
            a, b, c, d, periodic=True, backend="noperiodic", registry=registry
        )

    # auto: negotiation skips the periodic-incapable backend ...
    _, trace = solve_via(a, b, c, d, periodic=True, registry=registry)
    assert trace.backend == "engine"
    assert trace.periodic is True

    # ... which still wins plain (non-periodic) dispatch on priority
    _, trace = solve_via(*_batch(m=2, n=48), registry=registry)
    assert trace.backend == "noperiodic"


def test_no_capable_backend_lists_every_rejection():
    registry = BackendRegistry(router=Router())
    registry.register(_Float64Only())
    a, b, c, d = _batch(m=2, n=64, dtype=np.float32)
    with pytest.raises(BackendError, match="f64only.*float32"):
        solve_via(a, b, c, d, registry=registry)


def test_request_validation():
    z = np.zeros((3, 16))
    request = SolveRequest.build(z, z + 2, z, z, coerced=True, k=2)
    assert (request.m, request.n, request.k) == (3, 16, 2)
    assert request.dtype == "float64"
    with pytest.raises(TypeError, match="unknown solve option"):
        SolveRequest.build(z, z + 2, z, z, coerced=True, block_size=32)
    with pytest.raises(ValueError):
        SolveRequest.build(
            np.zeros(16), np.zeros(16), np.zeros(16), np.zeros(16),
            coerced=True,
        )


def test_periodic_requests_are_one_dispatch_seam():
    # periodic is a request attribute, not a separate protocol method:
    # the same solve_via seam serves cyclic systems
    a, b, c, d = _cyclic_batch(3, 48, seed=24)
    x, trace = solve_via(a, b, c, d, periodic=True)
    ref = solve_periodic_batch(a, b, c, d)
    assert trace.periodic is True
    assert np.array_equal(x, ref)


# ------------------------------------------------------------------ traces


def test_plan_cache_hit_recorded_on_warm_solve():
    a, b, c, d = _batch(m=5, n=192, seed=8)
    repro.solve_batch(a, b, c, d, backend="engine")
    first = repro.last_trace().plan_cache
    repro.solve_batch(a, b, c, d, backend="engine")
    assert first in ("hit", "miss")
    assert repro.last_trace().plan_cache == "hit"


def test_trace_records_stages_and_timing():
    a, b, c, d = _batch(m=4, n=128)
    repro.solve_batch(a, b, c, d)
    trace = repro.last_trace()
    stage_names = [s.name for s in trace.stages]
    assert stage_names[:2] == ["validate", "prepare"]
    assert trace.total_s >= 0.0
    assert (trace.m, trace.n) == (4, 128)
    assert trace.describe()["backend"] == "engine"


def test_direct_algorithms_record_traces_too():
    a, b, c, d = _batch(m=2, n=64)
    repro.solve_batch(a, b, c, d, algorithm="thomas")
    assert repro.last_trace().backend == "direct:thomas"


def test_gpusim_trace_carries_predictions():
    a, b, c, d = _batch(m=8, n=512)
    repro.solve_batch(a, b, c, d, backend="gpusim")
    trace = repro.last_trace()
    assert trace.predicted_total_us is not None and trace.predicted_total_us > 0
    assert any(s.predicted_us is not None for s in trace.stages)


def test_clear_last_trace():
    a, b, c, d = _batch(m=2, n=64)
    repro.solve_batch(a, b, c, d)
    assert repro.last_trace() is not None
    clear_last_trace()
    assert repro.last_trace() is None


def test_instrument_before_any_solve_raises():
    backend = EngineBackend()
    with pytest.raises(RuntimeError, match="not executed"):
        backend.instrument()
