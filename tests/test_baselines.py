"""Baselines: numerics, the Zhang size wall, Davidson's cost structure."""

import numpy as np
import pytest

from repro.baselines.davidson import DavidsonSolver
from repro.baselines.global_pcr import GlobalMemoryPCRSolver
from repro.baselines.mkl_proxy import mkl_multithreaded_proxy, mkl_sequential_proxy
from repro.baselines.zhang import SharedMemoryCapacityError, ZhangSolver
from repro.gpusim.device import GTX480

from .conftest import make_batch, max_err, reference_solve


@pytest.mark.parametrize("m,n", [(2, 64), (5, 333), (1, 1000)])
def test_mkl_proxies_match_reference(m, n):
    a, b, c, d = make_batch(m, n, seed=m * n)
    ref = reference_solve(a, b, c, d)
    assert max_err(mkl_sequential_proxy(a, b, c, d), ref) < 1e-12
    assert max_err(mkl_multithreaded_proxy(a, b, c, d), ref) < 1e-10


def test_mkl_mt_single_system_uses_sequential_path():
    a, b, c, d = make_batch(1, 128, seed=3)
    x1 = mkl_sequential_proxy(a, b, c, d)
    x2 = mkl_multithreaded_proxy(a, b, c, d)
    assert np.array_equal(x1, x2)


# ---- Zhang ------------------------------------------------------------------


def test_zhang_solves_within_capacity():
    a, b, c, d = make_batch(4, 1024, seed=4)
    x = ZhangSolver().solve_batch(a, b, c, d)
    assert max_err(x, reference_solve(a, b, c, d)) < 1e-9


def test_zhang_capacity_is_1536_double():
    assert ZhangSolver().capacity(8) == 1536
    assert ZhangSolver().capacity(4) == 3072


def test_zhang_raises_beyond_capacity():
    a, b, c, d = make_batch(1, 1537, seed=5)
    with pytest.raises(SharedMemoryCapacityError, match="size limitation"):
        ZhangSolver().solve_batch(a, b, c, d)


def test_zhang_float32_capacity_larger():
    a, b, c, d = make_batch(1, 2048, dtype=np.float32, seed=6)
    x = ZhangSolver().solve_batch(a, b, c, d)  # fits fp32, not fp64
    assert max_err(x, reference_solve(a, b, c, d)) < 1e-3


def test_zhang_counters_raise_beyond_capacity():
    with pytest.raises(SharedMemoryCapacityError):
        ZhangSolver().counters(1, 4096, 8)


def test_zhang_single_system_wrapper():
    a, b, c, d = make_batch(1, 256, seed=7)
    x = ZhangSolver().solve(a[0], b[0], c[0], d[0])
    assert max_err(x[None], reference_solve(a, b, c, d)) < 1e-10


# ---- Davidson -----------------------------------------------------------------


@pytest.mark.parametrize("m,n", [(1, 8192), (3, 4000), (2, 1000)])
def test_davidson_matches_reference(m, n):
    a, b, c, d = make_batch(m, n, seed=m + n)
    x = DavidsonSolver().solve_batch(a, b, c, d)
    assert max_err(x, reference_solve(a, b, c, d)) < 1e-9


def test_davidson_global_steps():
    dav = DavidsonSolver()
    assert dav.global_steps(1024, 8) == 0       # fits shared memory
    assert dav.global_steps(2048, 8) == 1
    assert dav.global_steps(2 * 1024 * 1024, 8) == 11
    assert dav.global_steps(2048, 4) == 0       # fp32 capacity is 3072


def test_davidson_counters_one_launch_per_global_step():
    dav = DavidsonSolver()
    counters = dav.counters(1, 1 << 14, 8)
    k_g = dav.global_steps(1 << 14, 8)
    assert len(counters) == k_g + 1  # + final in-smem kernel
    assert sum(c.launches for c in counters) == k_g + 1


def test_davidson_final_stage_strided_when_interleaved():
    dav = DavidsonSolver()
    counters = dav.counters(1, 1 << 14, 8)
    final = counters[-1]
    # gathering at stride 2^k_g >= 16 is uncoalesced: efficiency far below 1
    assert final.traffic.coalescing_efficiency < 0.2


def test_davidson_loses_to_hybrid_on_model():
    """Fig. 14's claim, as a model assertion: 2-10x slower everywhere."""
    from repro.kernels.hybrid_gpu import GpuHybridSolver

    gpu = GpuHybridSolver()
    dav = DavidsonSolver()
    for m, n in [(1024, 1024), (2048, 2048), (4096, 4096), (1, 2 * 1024 * 1024)]:
        ours = gpu.predict(m, n, 8).total_s
        theirs = dav.predict_seconds(m, n, 8)
        assert 1.3 < theirs / ours < 12.0, (m, n, theirs / ours)


def test_davidson_single_system_wrapper():
    a, b, c, d = make_batch(1, 5000, seed=8)
    x = DavidsonSolver().solve(a[0], b[0], c[0], d[0])
    assert max_err(x[None], reference_solve(a, b, c, d)) < 1e-9


# ---- global-memory PCR ------------------------------------------------------------


def test_global_pcr_matches_reference():
    a, b, c, d = make_batch(3, 777, seed=9)
    x = GlobalMemoryPCRSolver().solve_batch(a, b, c, d)
    assert max_err(x, reference_solve(a, b, c, d)) < 1e-9


def test_global_pcr_launch_per_step():
    counters = GlobalMemoryPCRSolver().counters(1, 1024, 8)
    assert len(counters) == 10  # log2(1024)


def test_global_pcr_slower_than_hybrid_at_scale():
    from repro.kernels.hybrid_gpu import GpuHybridSolver

    gpu = GpuHybridSolver()
    gp = GlobalMemoryPCRSolver()
    m, n = 2048, 2048
    assert gp.predict_seconds(m, n, 8) > gpu.predict(m, n, 8).total_s
