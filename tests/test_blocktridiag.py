"""Block-tridiagonal solver (block-Thomas)."""

import numpy as np
import pytest

from repro.core.blocktridiag import (
    block_factor,
    block_residual,
    block_thomas_solve_batch,
)


def _make(m, n, bs, seed=0, dominance=4.0):
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((m, n, bs, bs))
    C = rng.standard_normal((m, n, bs, bs))
    B = rng.standard_normal((m, n, bs, bs))
    # block-dominant main diagonal: B_i = dominance*(1+|rows|) on the diag
    row_mass = (
        np.abs(A).sum(axis=-1) + np.abs(B).sum(axis=-1) + np.abs(C).sum(axis=-1)
    )
    idx = np.arange(bs)
    B[..., idx, idx] += np.sign(B[..., idx, idx] + 0.5) * (dominance + row_mass)
    d = rng.standard_normal((m, n, bs))
    return A, B, C, d


def _dense(A, B, C, m_idx):
    n, bs = B.shape[1], B.shape[2]
    out = np.zeros((n * bs, n * bs))
    for i in range(n):
        out[i * bs : (i + 1) * bs, i * bs : (i + 1) * bs] = B[m_idx, i]
        if i > 0:
            out[i * bs : (i + 1) * bs, (i - 1) * bs : i * bs] = A[m_idx, i]
        if i < n - 1:
            out[i * bs : (i + 1) * bs, (i + 1) * bs : (i + 2) * bs] = C[m_idx, i]
    return out


@pytest.mark.parametrize("bs", [1, 2, 3, 5])
@pytest.mark.parametrize("n", [2, 7, 32])
def test_matches_dense(bs, n):
    m = 3
    A, B, C, d = _make(m, n, bs, seed=n * bs)
    x = block_thomas_solve_batch(A, B, C, d)
    for mi in range(m):
        dense = _dense(A, B, C, mi)
        ref = np.linalg.solve(dense, d[mi].reshape(-1)).reshape(n, bs)
        assert np.allclose(x[mi], ref, atol=1e-9), (mi, bs, n)


def test_block_size_one_bitwise_equals_scalar_thomas():
    """The B=1 fast path repeats thomas_solve_batch's op sequence, so
    the degenerate block solve is *bitwise* the scalar solve."""
    from repro.core.thomas import thomas_solve_batch

    m, n = 4, 50
    A, B, C, d = _make(m, n, 1, seed=1)
    x_blk = block_thomas_solve_batch(A, B, C, d)[..., 0]
    a = A[..., 0, 0].copy()
    b = B[..., 0, 0]
    c = C[..., 0, 0].copy()
    a[:, 0] = 0.0
    c[:, -1] = 0.0
    x = thomas_solve_batch(a, b, c, d[..., 0])
    assert np.array_equal(x_blk, x)


@pytest.mark.parametrize("bs", [1, 3])
def test_float32_preserved(bs):
    """float32 batches stay float32 end to end (no silent float64
    promotion in the factor or the sweep)."""
    A, B, C, d = (
        v.astype(np.float32) for v in _make(2, 12, bs, seed=6, dominance=8.0)
    )
    x = block_thomas_solve_batch(A, B, C, d)
    assert x.dtype == np.float32
    fact = block_factor(A, B, C)
    assert fact.dtype == np.float32
    assert np.array_equal(fact.solve(d), x)
    r = block_residual(A, B, C, d, x)
    assert np.abs(r).max() < 1e-3


@pytest.mark.parametrize("bs", [1, 2, 4])
@pytest.mark.parametrize("n", [1, 2])
def test_tiny_n_edges(bs, n):
    """N = 1 (pure block solve) and N = 2 (one elimination step)."""
    A, B, C, d = _make(3, n, bs, seed=n + bs)
    x = block_thomas_solve_batch(A, B, C, d)
    for mi in range(3):
        ref = np.linalg.solve(_dense(A, B, C, mi), d[mi].reshape(-1))
        assert np.allclose(x[mi], ref.reshape(n, bs), atol=1e-9)


def test_prepared_bitwise_matches_cold():
    A, B, C, d = _make(3, 24, 3, seed=5)
    cold = block_thomas_solve_batch(A, B, C, d)
    fact = block_factor(A, B, C)
    assert np.array_equal(fact.solve(d), cold)


def test_residual_small():
    A, B, C, d = _make(2, 20, 3, seed=2)
    x = block_thomas_solve_batch(A, B, C, d)
    r = block_residual(A, B, C, d, x)
    assert np.abs(r).max() < 1e-9


def test_single_system_batch_of_one():
    A, B, C, d = _make(1, 16, 2, seed=3)
    x = block_thomas_solve_batch(A, B, C, d)[0]
    assert x.shape == (16, 2)
    ref = np.linalg.solve(_dense(A, B, C, 0), d[0].reshape(-1)).reshape(16, 2)
    assert np.allclose(x, ref, atol=1e-9)


def test_validation():
    with pytest.raises(ValueError, match="square"):
        block_thomas_solve_batch(
            np.zeros((1, 4, 2, 3)), np.zeros((1, 4, 2, 3)),
            np.zeros((1, 4, 2, 3)), np.zeros((1, 4, 2)),
        )
    A, B, C, d = _make(1, 4, 2)
    with pytest.raises(ValueError, match="expected"):
        block_thomas_solve_batch(A, B, C, d[:, :, :1])
    with pytest.raises(ValueError, match="must be \\(M, N, B, B\\)"):
        block_thomas_solve_batch(np.zeros((4, 2, 2)), np.zeros((4, 2, 2)),
                                 np.zeros((4, 2, 2)), np.zeros((4, 2)))


def test_coupled_reaction_diffusion_step():
    """Integration: an implicit step of a 2-species reaction-diffusion
    system produces a 2x2-block tridiagonal solve."""
    n, bs = 64, 2
    dt, dx, D1, D2 = 0.1, 1.0, 1.0, 0.5
    coupling = np.array([[0.0, -0.2], [0.3, 0.0]])
    I = np.eye(bs)
    diag = I + dt / dx**2 * np.diag([2 * D1, 2 * D2]) - dt * coupling
    off1 = -dt / dx**2 * np.diag([D1, D2])
    A = np.tile(off1, (1, n, 1, 1))
    C = np.tile(off1, (1, n, 1, 1))
    B = np.tile(diag, (1, n, 1, 1))
    rng = np.random.default_rng(4)
    u = rng.random((1, n, bs))
    x = block_thomas_solve_batch(A, B, C, u)
    r = block_residual(A, B, C, u, x)
    assert np.abs(r).max() < 1e-10
    assert np.all(np.isfinite(x))
