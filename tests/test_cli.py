"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_plan_command(capsys):
    assert main(["plan", "-M", "64", "-N", "4096"]) == 0
    out = capsys.readouterr().out
    assert "k=6" in out
    assert "GTX480" in out
    assert "p-Thomas" in out


def test_plan_c2050_fp32(capsys):
    assert main(["plan", "-M", "8", "-N", "8192", "--device", "c2050", "--fp32"]) == 0
    out = capsys.readouterr().out
    assert "C2050" in out
    assert "fp32" in out


def test_solve_command(capsys):
    assert main(["solve", "-M", "8", "-N", "256"]) == 0
    out = capsys.readouterr().out
    assert "relative residual" in out


@pytest.mark.parametrize("algo", ["thomas", "pcr", "rd", "hybrid"])
def test_solve_algorithms(capsys, algo):
    assert main(["solve", "-M", "4", "-N", "128", "--algorithm", algo]) == 0


def test_solve_fused(capsys):
    assert main(["solve", "-M", "4", "-N", "512", "--fuse"]) == 0


def test_figures_12(capsys):
    assert main(["figures", "--figure", "12", "--panel", "512"]) == 0
    out = capsys.readouterr().out
    assert "| M |" in out
    assert "16384" in out


def test_figures_13_default_panel(capsys):
    assert main(["figures", "--figure", "13"]) == 0
    assert "PCR share" in capsys.readouterr().out


def test_figures_14(capsys):
    assert main(["figures", "--figure", "14"]) == 0
    assert "1x2M" in capsys.readouterr().out


def test_figures_bad_panel(capsys):
    assert main(["figures", "--figure", "12", "--panel", "999"]) == 2


@pytest.mark.parametrize("table", ["1", "2", "3"])
def test_tables(capsys, table):
    assert main(["tables", "--table", table]) == 0
    assert "|" in capsys.readouterr().out


def test_anchors(capsys):
    assert main(["anchors"]) == 0
    out = capsys.readouterr().out
    assert "all anchors within band" in out


def test_report(capsys):
    assert main(["report"]) == 0
    assert "# EXPERIMENTS" in capsys.readouterr().out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_roofline_command(capsys):
    assert main(["roofline"]) == 0
    out = capsys.readouterr().out
    assert "ridge" in out
    assert "p-Thomas (interleaved)" in out


def test_roofline_fp32(capsys):
    assert main(["roofline", "--fp32", "-k", "4"]) == 0
    assert "fp32" in capsys.readouterr().out


def test_accuracy_command(capsys):
    assert main(["accuracy", "--sweep", "dominance"]) == 0
    out = capsys.readouterr().out
    assert "forward error" in out
    assert "hybrid" in out


def test_backends_command(capsys):
    assert main(["backends"]) == 0
    out = capsys.readouterr().out
    for name in ("engine", "threaded", "numpy", "gpusim"):
        assert name in out
    assert "simulated" in out
    assert "float32/float64" in out


@pytest.mark.parametrize("backend", ["engine", "numpy", "threaded", "gpusim"])
def test_solve_backend_flag(capsys, backend):
    assert main(["solve", "-M", "4", "-N", "128", "--backend", backend]) == 0
    assert "relative residual" in capsys.readouterr().out


def test_solve_trace_flag(capsys):
    assert main(["solve", "-M", "4", "-N", "256", "--trace"]) == 0
    out = capsys.readouterr().out
    assert "backend: engine" in out
    assert "plan cache" in out
    assert "| stage |" in out


def test_solve_trace_shows_gpusim_predictions(capsys):
    assert main([
        "solve", "-M", "4", "-N", "256", "--backend", "gpusim", "--trace",
    ]) == 0
    out = capsys.readouterr().out
    assert "backend: gpusim" in out
    assert "predicted (us)" in out
    assert "device-model prediction" in out


def test_solve_workers_flag(capsys):
    assert main(["solve", "-M", "8", "-N", "128", "--workers", "2", "--trace"]) == 0
    out = capsys.readouterr().out
    assert "backend: threaded" in out
    assert "sharded-execute[2]" in out


def test_solve_backend_rejected_for_classic_algorithms(capsys):
    rc = main([
        "solve", "-M", "4", "-N", "128",
        "--algorithm", "thomas", "--backend", "engine",
    ])
    assert rc == 2
    assert "hybrid/auto" in capsys.readouterr().err


def test_solve_unknown_backend_errors():
    from repro.backends import BackendError

    with pytest.raises(BackendError, match="unknown backend"):
        main(["solve", "-M", "4", "-N", "128", "--backend", "nope"])


def test_trace_command(capsys):
    assert main(["trace", "-M", "4", "-N", "256"]) == 0
    out = capsys.readouterr().out
    assert "backend: engine" in out
    assert "routing: static -> engine" in out
    assert "| stage |" in out


def test_trace_command_json(capsys):
    import json

    assert main(["trace", "-M", "4", "-N", "256", "--json"]) == 0
    info = json.loads(capsys.readouterr().out)
    assert info["backend"] == "engine"
    assert info["decision"]["router"] == "static"
    assert info["decision"]["chosen"] == "engine"
    assert "engine" in info["decision"]["candidates"]
    assert info["stages"][0]["name"] == "validate"


def test_trace_command_explicit_backend(capsys):
    import json

    assert main(["trace", "-M", "4", "-N", "128",
                 "--backend", "numpy", "--json"]) == 0
    info = json.loads(capsys.readouterr().out)
    assert info["backend"] == "numpy"
    assert info["decision"]["router"] == "explicit"
    assert info["decision"]["candidates"] == ["numpy"]


def test_tune_and_router_commands(capsys, tmp_path):
    model = str(tmp_path / "model.json")
    assert main(["tune", "--model", model, "--shapes", "4x64",
                 "--repeats", "2", "--warmup", "0"]) == 0
    out = capsys.readouterr().out
    assert "calibrating M=4 N=64" in out
    assert f"model saved to {model}" in out
    assert "best: backend=" in out

    assert main(["router", "--model", model]) == 0
    out = capsys.readouterr().out
    assert "M2^2|N2^6|float64|plain" in out
    assert "best: backend=" in out

    # adaptive trace consumes the tuned model
    assert main(["trace", "-M", "4", "-N", "64",
                 "--adaptive", model, "--json"]) == 0
    import json

    info = json.loads(capsys.readouterr().out)
    assert info["decision"]["router"] == "adaptive"
    assert info["decision"]["model"] == "hit"

    assert main(["router", "--model", model, "--reset"]) == 0
    assert "removed" in capsys.readouterr().out
    assert main(["router", "--model", model]) == 1
    assert "run `repro tune` first" in capsys.readouterr().err


def test_router_command_corrupt_model(capsys, tmp_path):
    model = tmp_path / "model.json"
    model.write_text("{not json")
    assert main(["router", "--model", str(model)]) == 1
    err = capsys.readouterr().err
    assert "unusable model" in err


def test_tune_bad_shapes():
    with pytest.raises(SystemExit, match="expected MxN"):
        main(["tune", "--shapes", "64", "--model", "ignored.json"])


def test_solve_penta_system(capsys):
    assert main(["solve", "-M", "8", "-N", "64", "--system", "penta"]) == 0
    out = capsys.readouterr().out
    assert "pentadiagonal" in out
    assert "relative residual" in out


def test_solve_block_system(capsys):
    assert main(
        ["solve", "-M", "4", "-N", "32", "--system", "block",
         "--block-size", "3"]
    ) == 0
    out = capsys.readouterr().out
    assert "block-tridiagonal (B=3)" in out


def test_solve_penta_trace_stamps_system(capsys):
    assert main(
        ["solve", "-M", "4", "-N", "32", "--system", "penta", "--trace"]
    ) == 0
    out = capsys.readouterr().out
    assert "[pentadiagonal]" in out


def test_solve_banded_rejects_periodic_prepare_and_algorithms(capsys):
    base = ["solve", "-M", "4", "-N", "32", "--system", "penta"]
    assert main(base + ["--periodic"]) == 2
    assert main(base + ["--prepare", "3"]) == 2
    assert main(base + ["--algorithm", "thomas"]) == 2
    err = capsys.readouterr().err
    assert "penta/block" in err
