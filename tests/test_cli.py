"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_plan_command(capsys):
    assert main(["plan", "-M", "64", "-N", "4096"]) == 0
    out = capsys.readouterr().out
    assert "k=6" in out
    assert "GTX480" in out
    assert "p-Thomas" in out


def test_plan_c2050_fp32(capsys):
    assert main(["plan", "-M", "8", "-N", "8192", "--device", "c2050", "--fp32"]) == 0
    out = capsys.readouterr().out
    assert "C2050" in out
    assert "fp32" in out


def test_solve_command(capsys):
    assert main(["solve", "-M", "8", "-N", "256"]) == 0
    out = capsys.readouterr().out
    assert "relative residual" in out


@pytest.mark.parametrize("algo", ["thomas", "pcr", "rd", "hybrid"])
def test_solve_algorithms(capsys, algo):
    assert main(["solve", "-M", "4", "-N", "128", "--algorithm", algo]) == 0


def test_solve_fused(capsys):
    assert main(["solve", "-M", "4", "-N", "512", "--fuse"]) == 0


def test_figures_12(capsys):
    assert main(["figures", "--figure", "12", "--panel", "512"]) == 0
    out = capsys.readouterr().out
    assert "| M |" in out
    assert "16384" in out


def test_figures_13_default_panel(capsys):
    assert main(["figures", "--figure", "13"]) == 0
    assert "PCR share" in capsys.readouterr().out


def test_figures_14(capsys):
    assert main(["figures", "--figure", "14"]) == 0
    assert "1x2M" in capsys.readouterr().out


def test_figures_bad_panel(capsys):
    assert main(["figures", "--figure", "12", "--panel", "999"]) == 2


@pytest.mark.parametrize("table", ["1", "2", "3"])
def test_tables(capsys, table):
    assert main(["tables", "--table", table]) == 0
    assert "|" in capsys.readouterr().out


def test_anchors(capsys):
    assert main(["anchors"]) == 0
    out = capsys.readouterr().out
    assert "all anchors within band" in out


def test_report(capsys):
    assert main(["report"]) == 0
    assert "# EXPERIMENTS" in capsys.readouterr().out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_roofline_command(capsys):
    assert main(["roofline"]) == 0
    out = capsys.readouterr().out
    assert "ridge" in out
    assert "p-Thomas (interleaved)" in out


def test_roofline_fp32(capsys):
    assert main(["roofline", "--fp32", "-k", "4"]) == 0
    assert "fp32" in capsys.readouterr().out


def test_accuracy_command(capsys):
    assert main(["accuracy", "--sweep", "dominance"]) == 0
    out = capsys.readouterr().out
    assert "forward error" in out
    assert "hybrid" in out


def test_backends_command(capsys):
    assert main(["backends"]) == 0
    out = capsys.readouterr().out
    for name in ("engine", "threaded", "numpy", "gpusim"):
        assert name in out
    assert "simulated" in out
    assert "float32/float64" in out


@pytest.mark.parametrize("backend", ["engine", "numpy", "threaded", "gpusim"])
def test_solve_backend_flag(capsys, backend):
    assert main(["solve", "-M", "4", "-N", "128", "--backend", backend]) == 0
    assert "relative residual" in capsys.readouterr().out


def test_solve_trace_flag(capsys):
    assert main(["solve", "-M", "4", "-N", "256", "--trace"]) == 0
    out = capsys.readouterr().out
    assert "backend: engine" in out
    assert "plan cache" in out
    assert "| stage |" in out


def test_solve_trace_shows_gpusim_predictions(capsys):
    assert main([
        "solve", "-M", "4", "-N", "256", "--backend", "gpusim", "--trace",
    ]) == 0
    out = capsys.readouterr().out
    assert "backend: gpusim" in out
    assert "predicted (us)" in out
    assert "device-model prediction" in out


def test_solve_workers_flag(capsys):
    assert main(["solve", "-M", "8", "-N", "128", "--workers", "2", "--trace"]) == 0
    out = capsys.readouterr().out
    assert "backend: threaded" in out
    assert "sharded-execute[2]" in out


def test_solve_backend_rejected_for_classic_algorithms(capsys):
    rc = main([
        "solve", "-M", "4", "-N", "128",
        "--algorithm", "thomas", "--backend", "engine",
    ])
    assert rc == 2
    assert "hybrid/auto" in capsys.readouterr().err


def test_solve_unknown_backend_errors():
    from repro.backends import BackendError

    with pytest.raises(BackendError, match="unknown backend"):
        main(["solve", "-M", "4", "-N", "128", "--backend", "nope"])
