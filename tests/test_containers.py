"""TridiagonalSystem / BatchTridiagonal containers and helpers."""

import numpy as np
import pytest

from repro.util.tridiag import (
    BatchTridiagonal,
    TridiagonalSystem,
    as_batch,
    dense_from_diagonals,
)

from .conftest import make_batch, make_system


def test_system_basic_properties():
    a, b, c, d = make_system(10)
    s = TridiagonalSystem(a, b, c, d)
    assert s.n == 10
    assert s.dtype == np.float64


def test_system_pads_zeroed():
    a, b, c, d = make_system(5)
    a = a.copy()
    a[0] = 7.0
    c = c.copy()
    c[-1] = -3.0
    s = TridiagonalSystem(a, b, c, d)
    assert s.a[0] == 0.0
    assert s.c[-1] == 0.0


def test_system_to_dense_matches_residual():
    a, b, c, d = make_system(8, seed=3)
    s = TridiagonalSystem(a, b, c, d)
    x = np.linalg.solve(s.to_dense(), d)
    assert np.abs(s.residual(x)).max() < 1e-10


def test_system_to_banded_scipy_compatible():
    from scipy.linalg import solve_banded

    a, b, c, d = make_system(12, seed=4)
    s = TridiagonalSystem(a, b, c, d)
    x = solve_banded((1, 1), s.to_banded(), d)
    assert np.abs(s.residual(x)).max() < 1e-10


def test_system_copy_independent():
    a, b, c, d = make_system(6)
    s = TridiagonalSystem(a, b, c, d)
    t = s.copy()
    t.b[0] = 999.0
    assert s.b[0] != 999.0


def test_system_rejects_empty():
    with pytest.raises(ValueError, match="empty"):
        TridiagonalSystem(np.zeros(0), np.zeros(0), np.zeros(0), np.zeros(0))


def test_system_rejects_mismatched_lengths():
    with pytest.raises(ValueError):
        TridiagonalSystem(np.zeros(3), np.ones(4), np.zeros(3), np.ones(3))


def test_system_rejects_integer_dtype():
    with pytest.raises(TypeError):
        TridiagonalSystem(
            np.zeros(3, dtype=int), np.ones(3, dtype=int),
            np.zeros(3, dtype=int), np.ones(3, dtype=int),
        )


def test_batch_basic_properties():
    a, b, c, d = make_batch(4, 9)
    batch = BatchTridiagonal(a, b, c, d)
    assert batch.m == 4
    assert batch.n == 9
    assert batch.nbytes() == 4 * 4 * 9 * 8


def test_batch_system_extraction():
    a, b, c, d = make_batch(3, 7, seed=2)
    batch = BatchTridiagonal(a, b, c, d)
    s = batch.system(1)
    assert np.array_equal(s.b, b[1])


def test_batch_residual_shape_check():
    a, b, c, d = make_batch(2, 5)
    batch = BatchTridiagonal(a, b, c, d)
    with pytest.raises(ValueError, match="shape"):
        batch.residual(np.zeros(5))


def test_batch_residual_zero_for_exact_solution():
    a, b, c, d = make_batch(3, 20, seed=5)
    batch = BatchTridiagonal(a, b, c, d)
    from .conftest import reference_solve

    x = reference_solve(a, b, c, d)
    assert np.abs(batch.residual(x)).max() < 1e-10


def test_as_batch_accepts_everything():
    a, b, c, d = make_batch(2, 6)
    assert as_batch(BatchTridiagonal(a, b, c, d)).m == 2
    assert as_batch(TridiagonalSystem(a[0], b[0], c[0], d[0])).m == 1
    assert as_batch((a, b, c, d)).m == 2
    assert as_batch((a[0], b[0], c[0], d[0])).m == 1


def test_as_batch_rejects_garbage():
    with pytest.raises(TypeError):
        as_batch("not a system")


def test_system_as_batch_shares_memory():
    a, b, c, d = make_system(5)
    s = TridiagonalSystem(a, b, c, d)
    batch = s.as_batch()
    assert batch.b.base is s.b or batch.b.flags["OWNDATA"] is False


def test_dense_from_diagonals():
    a = np.array([0.0, 1.0, 2.0])
    b = np.array([5.0, 6.0, 7.0])
    c = np.array([3.0, 4.0, 0.0])
    dense = dense_from_diagonals(a, b, c)
    expected = np.array([[5.0, 3.0, 0.0], [1.0, 6.0, 4.0], [0.0, 2.0, 7.0]])
    assert np.array_equal(dense, expected)


def test_dense_from_diagonals_n1():
    dense = dense_from_diagonals(np.zeros(1), np.array([2.0]), np.zeros(1))
    assert dense.shape == (1, 1)
    assert dense[0, 0] == 2.0


def test_float32_batch_dtype():
    a, b, c, d = make_batch(2, 4, dtype=np.float32)
    assert BatchTridiagonal(a, b, c, d).dtype == np.float32
