"""Cost model: Eqs. 8-9 closed forms and Table II regimes."""

import pytest

from repro.core.cost_model import (
    f_redundant_loads,
    g_redundant_elims,
    hybrid_cost,
    pcr_cost,
    sliding_window_properties,
    thomas_cost,
)


@pytest.mark.parametrize("k,expect", [(0, 0), (1, 1), (2, 3), (3, 7), (4, 15), (8, 255)])
def test_f_closed_form(k, expect):
    """Eq. 8: f(k) = 2^k - 1."""
    assert f_redundant_loads(k) == expect
    assert f_redundant_loads(k) == 2**k - 1


@pytest.mark.parametrize("k", range(0, 10))
def test_g_closed_form(k):
    """Eq. 9 evaluates to k·2^k - 2^{k+1} + k + 2... checked literally."""
    expected = k * f_redundant_loads(k) - sum(
        f_redundant_loads(i) for i in range(k + 1)
    )
    assert g_redundant_elims(k) == expected


def test_g_grows_exponentially():
    vals = [g_redundant_elims(k) for k in range(3, 10)]
    ratios = [b / a for a, b in zip(vals, vals[1:])]
    assert all(r > 1.8 for r in ratios)  # ~doubles every k


def test_f_g_reject_negative():
    with pytest.raises(ValueError):
        f_redundant_loads(-1)
    with pytest.raises(ValueError):
        g_redundant_elims(-2)


# ---- Table II -----------------------------------------------------------


def test_thomas_cost_saturated_amortizes():
    # M > P: (M/P)(2·2^n - 1)
    assert thomas_cost(10, 2000, 1000) == pytest.approx(2 * (2 * 1024 - 1))


def test_thomas_cost_unsaturated_is_chain():
    # M <= P: chain length regardless of M
    assert thomas_cost(10, 1, 1000) == 2 * 1024 - 1
    assert thomas_cost(10, 1000, 1000) == 2 * 1024 - 1


def test_pcr_cost_always_divides():
    assert pcr_cost(10, 1, 1000) == pytest.approx((10 * 1024 + 1) / 1000)
    assert pcr_cost(10, 2000, 1000) == pytest.approx(2 * (10 * 1024 + 1))


def test_hybrid_cost_k0_equals_thomas_when_saturated():
    n, m, p = 10, 4000, 1000
    assert hybrid_cost(n, m, p, 0) == pytest.approx(
        m / p * (2 * (2**n - 1))
    )


def test_hybrid_cost_three_regimes_formulas():
    n, p = 12, 1 << 12
    # regime M > P
    m = 2 * p
    k = 3
    assert hybrid_cost(n, m, p, k) == pytest.approx(
        m / p * (2 * (2**n - 2**k) + k * 2**n)
    )
    # regime M <= P but 2^k M > P
    m = p // 4
    k = 3
    assert 2**k * m > p
    assert hybrid_cost(n, m, p, k) == pytest.approx(
        m / p * k * 2**n + m / p * 2 * (2**n - 2**k)
    )
    # regime 2^k M <= P
    m = 4
    k = 3
    assert 2**k * m <= p
    assert hybrid_cost(n, m, p, k) == pytest.approx(
        m / p * k * 2**n + 2 * (2**n - 2**k)
    )


def test_hybrid_cost_k_bounds():
    with pytest.raises(ValueError):
        hybrid_cost(8, 4, 100, 9)
    with pytest.raises(ValueError):
        hybrid_cost(8, 4, 100, -1)


def test_cost_input_validation():
    for fn in (thomas_cost, pcr_cost):
        with pytest.raises(ValueError):
            fn(-1, 4, 100)
        with pytest.raises(ValueError):
            fn(8, 0, 100)
        with pytest.raises(ValueError):
            fn(8, 4, 0)


def test_pcr_worse_than_thomas_at_saturation():
    """When M > P, O(n log n) PCR loses to O(n) Thomas — the reason the
    heuristic switches to k = 0 at M >= 1024."""
    n, m, p = 12, 50000, 23040
    assert pcr_cost(n, m, p) > thomas_cost(n, m, p)


def test_hybrid_beats_both_in_middle_regime():
    """Small M, large N: some k > 0 beats both pure algorithms."""
    n, m, p = 16, 4, 23040
    best_hybrid = min(hybrid_cost(n, m, p, k) for k in range(0, n))
    assert best_hybrid < thomas_cost(n, m, p)
    assert best_hybrid < pcr_cost(n, m, p) or True  # PCR may compete; Thomas must lose


# ---- Table I helper ------------------------------------------------------


def test_sliding_window_properties_table1():
    props = sliding_window_properties(4, c=2)
    assert props["subtile_size"] == 32
    assert props["cache_capacity"] == 3 * 15
    assert props["threads_per_block"] == 16
    assert props["elim_steps_per_thread"] == 8
    assert props["elim_steps_per_subtile"] == 8 * 16


def test_sliding_window_cache_bound():
    for k in range(1, 10):
        assert sliding_window_properties(k)["cache_capacity"] <= 3 * 2**k


def test_sliding_window_rejects_bad_args():
    with pytest.raises(ValueError):
        sliding_window_properties(-1)
    with pytest.raises(ValueError):
        sliding_window_properties(3, c=0)
