"""Cyclic reduction: correctness across sizes, step semantics."""

import numpy as np
import pytest

from repro.core.cr import cr_forward_step, cr_solve, cr_solve_batch
from repro.util.tridiag import dense_from_diagonals

from .conftest import make_batch, make_system, max_err, reference_solve


@pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 7, 8, 9, 16, 31, 64, 100, 255, 512])
def test_matches_reference(n):
    a, b, c, d = make_system(n, seed=n * 3)
    x = cr_solve(a, b, c, d)
    assert max_err(x, reference_solve(a, b, c, d)[0]) < 1e-10


@pytest.mark.parametrize("m,n", [(2, 64), (5, 100), (16, 37)])
def test_batch_matches_reference(m, n):
    a, b, c, d = make_batch(m, n, seed=m * n)
    x = cr_solve_batch(a, b, c, d)
    assert max_err(x, reference_solve(a, b, c, d)) < 1e-10


def test_forward_step_halves_system():
    a, b, c, d = make_batch(1, 16, seed=1)
    ar, br, cr_, dr = cr_forward_step(a, b, c, d)
    assert br.shape == (1, 8)


def test_forward_step_odd_length():
    a, b, c, d = make_batch(1, 9, seed=2)
    ar, br, cr_, dr = cr_forward_step(a, b, c, d)
    assert br.shape == (1, 4)  # floor(9/2)


def test_forward_step_preserves_odd_row_solution():
    """The reduced system's solution equals the odd rows of the original."""
    a, b, c, d = make_batch(1, 16, seed=3)
    x_ref = reference_solve(a, b, c, d)[0]
    ar, br, cr_, dr = cr_forward_step(a, b, c, d)
    aa, bb, cc, dd = ar[0], br[0], cr_[0], dr[0]
    dense = dense_from_diagonals(np.r_[0.0, aa[1:]], bb, np.r_[cc[:-1], 0.0])
    assert np.allclose(np.linalg.solve(dense, dd), x_ref[1::2], atol=1e-10)


def test_float32():
    a, b, c, d = make_batch(3, 50, dtype=np.float32, seed=4)
    x = cr_solve_batch(a, b, c, d)
    assert x.dtype == np.float32
    assert max_err(x, reference_solve(a, b, c, d)) < 1e-3


def test_two_by_two_direct():
    a = np.array([0.0, 1.0])
    b = np.array([3.0, 4.0])
    c = np.array([2.0, 0.0])
    d = np.array([7.0, 9.0])
    x = cr_solve(a, b, c, d)
    assert np.allclose(x, np.linalg.solve([[3, 2], [1, 4]], d))


def test_agrees_with_thomas_exactly_shaped():
    from repro.core.thomas import thomas_solve_batch

    a, b, c, d = make_batch(4, 128, seed=5)
    assert max_err(cr_solve_batch(a, b, c, d), thomas_solve_batch(a, b, c, d)) < 1e-11
