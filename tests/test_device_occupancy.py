"""DeviceSpec derived quantities and the occupancy calculator."""

import pytest

from repro.gpusim.device import GTX480, TESLA_C2050, DeviceSpec
from repro.gpusim.kernel import LaunchConfig
from repro.gpusim.occupancy import occupancy


def test_gtx480_published_figures():
    assert GTX480.sm_count == 15
    assert GTX480.total_cores == 480
    assert GTX480.max_resident_threads == 15 * 1536
    assert GTX480.max_resident_warps_per_sm == 48
    assert GTX480.mem_bandwidth_gbs == pytest.approx(177.4)


def test_flops_per_cycle_by_dtype():
    assert GTX480.flops_per_cycle_per_sm(4) == 32
    assert GTX480.flops_per_cycle_per_sm(8) == 4   # GeForce FP64 penalty
    assert TESLA_C2050.flops_per_cycle_per_sm(8) == 16
    with pytest.raises(ValueError):
        GTX480.flops_per_cycle_per_sm(2)


def test_with_overrides():
    half = GTX480.with_overrides(mem_bandwidth_gbs=88.7)
    assert half.mem_bandwidth_gbs == 88.7
    assert half.sm_count == GTX480.sm_count
    assert GTX480.mem_bandwidth_gbs == pytest.approx(177.4)  # original intact


def test_device_validation():
    with pytest.raises(ValueError):
        DeviceSpec(name="bad", sm_count=0, cores_per_sm=32, clock_ghz=1.0)
    with pytest.raises(ValueError):
        DeviceSpec(
            name="bad", sm_count=1, cores_per_sm=32, clock_ghz=1.0,
            achievable_bw_fraction=1.5,
        )


# ---- occupancy ------------------------------------------------------------


def test_thread_limited():
    # 512-thread blocks, no smem: 1536/512 = 3 blocks per SM
    occ = occupancy(GTX480, 512)
    assert occ.blocks_per_sm == 3
    assert occ.warps_per_sm == 48
    assert occ.occupancy == 1.0
    assert occ.limited_by == "threads"


def test_block_limited():
    # tiny blocks hit the 8-blocks/SM wall
    occ = occupancy(GTX480, 32)
    assert occ.blocks_per_sm == 8
    assert occ.warps_per_sm == 8
    assert occ.occupancy == pytest.approx(8 / 48)
    assert occ.limited_by == "blocks"


def test_smem_limited():
    # 20 KiB blocks: 48/20 = 2 blocks per SM
    occ = occupancy(GTX480, 128, smem_per_block=20 * 1024)
    assert occ.blocks_per_sm == 2
    assert occ.limited_by == "smem"


def test_register_limited():
    # 64 regs x 256 threads = 16384 regs -> 2 blocks per SM
    occ = occupancy(GTX480, 256, regs_per_thread=64)
    assert occ.blocks_per_sm == 2
    assert occ.limited_by == "registers"


def test_partial_warps_round_up():
    occ = occupancy(GTX480, 48)  # 1.5 warps -> 2 warp slots
    assert occ.warps_per_sm == occ.blocks_per_sm * 2


def test_whole_sm_block():
    occ = occupancy(GTX480, 1024, smem_per_block=40 * 1024)
    assert occ.blocks_per_sm == 1


def test_occupancy_rejects_bad_config():
    with pytest.raises(ValueError):
        occupancy(GTX480, 0)
    with pytest.raises(ValueError):
        occupancy(GTX480, 2048)  # > max threads/block
    with pytest.raises(ValueError):
        occupancy(GTX480, 128, smem_per_block=64 * 1024)
    with pytest.raises(ValueError):
        occupancy(GTX480, 128, regs_per_thread=0)


def test_sliding_window_blocks_keep_high_occupancy():
    """The paper's argument: small window footprints allow many blocks/SM
    (unlike coarse tiling's whole-SM blocks)."""
    from repro.core.window import BufferedSlidingWindow

    w = BufferedSlidingWindow(k=6, dtype_bytes=8)  # 64-thread window
    occ = occupancy(GTX480, w.threads_per_block, w.smem_bytes())
    assert occ.blocks_per_sm >= 6


# ---- LaunchConfig ----------------------------------------------------------


def test_launch_config_derived():
    cfg = LaunchConfig(grid=100, block=128)
    assert cfg.threads == 12800
    assert cfg.warps_per_block() == 4


def test_launch_config_concurrency_and_waves():
    cfg = LaunchConfig(grid=1000, block=1024, smem_per_block=40 * 1024)
    # 1 block per SM x 15 SMs
    assert cfg.concurrent_blocks(GTX480) == 15
    assert cfg.waves(GTX480) == -(-1000 // 15)


def test_launch_config_validation():
    with pytest.raises(ValueError):
        LaunchConfig(grid=0, block=128)
    with pytest.raises(ValueError):
        LaunchConfig(grid=1, block=0)
