"""Factorization spill-to-disk tier: round-trips, sharing, eviction."""

import numpy as np
import pytest

from repro.engine import ExecutionEngine, FactorizationDiskCache
from repro.engine.diskcache import _key_filename


def _batch(m=16, n=64, seed=0, cyclic=False, dtype=np.float64):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, n)).astype(dtype)
    c = rng.standard_normal((m, n)).astype(dtype)
    b = (4.0 + np.abs(a) + np.abs(c)).astype(dtype)
    d = rng.standard_normal((m, n)).astype(dtype)
    if not cyclic:
        a[:, 0] = 0.0
        c[:, -1] = 0.0
    return a, b, c, d


def test_spilled_factorization_is_shared_across_engines(tmp_path):
    a, b, c, d = _batch(seed=1)
    eng1 = ExecutionEngine(cache_dir=tmp_path)
    info: dict = {}
    eng1.solve_batch(a, b, c, d, k=0, fingerprint=True, info=info)
    assert info["factorization"] == "factored"
    ref = eng1.solve_batch(a, b, c, d, k=0, fingerprint=True)
    assert eng1.disk_cache.stores == 1
    assert len(eng1.disk_cache.files()) == 1

    # a fresh engine (empty memory cache) answers from the directory:
    # no re-elimination, identical bits
    eng2 = ExecutionEngine(cache_dir=tmp_path)
    info2: dict = {}
    x = eng2.solve_batch(a, b, c, d, k=0, fingerprint=True, info=info2)
    assert info2["factorization"] == "hit"
    assert info2["rhs_only"] is True
    assert eng2.stats.factorizations_built == 0
    assert eng2.disk_cache.hits == 1
    assert np.array_equal(x, ref)


def test_hybrid_and_cyclic_factorizations_round_trip(tmp_path):
    a, b, c, d = _batch(m=8, n=256, seed=2)
    eng1 = ExecutionEngine(cache_dir=tmp_path)
    ref_h = eng1.solve_batch(a, b, c, d, k=3, fingerprint=True)

    pa, pb, pc, pd = _batch(m=8, n=96, seed=3, cyclic=True)
    ref_p = eng1.solve_periodic(pa, pb, pc, pd, k=0, fingerprint=True)
    assert eng1.disk_cache.stores == 2

    eng2 = ExecutionEngine(cache_dir=tmp_path)
    xh = eng2.solve_batch(a, b, c, d, k=3, fingerprint=True)
    info: dict = {}
    xp = eng2.solve_periodic(pa, pb, pc, pd, k=0, fingerprint=True, info=info)
    assert eng2.stats.factorizations_built == 0
    assert info["factorization"] == "hit"
    assert np.array_equal(xh, ref_h)
    assert np.array_equal(xp, ref_p)


def test_disk_cache_is_off_by_default():
    assert ExecutionEngine().disk_cache is None


def test_size_cap_evicts_oldest_files(tmp_path):
    a, b, c, d = _batch(m=32, n=128, seed=4)
    eng = ExecutionEngine(cache_dir=tmp_path)
    eng.solve_batch(a, b, c, d, k=0, fingerprint=True)
    one_file_bytes = eng.disk_cache.nbytes()
    assert one_file_bytes > 0

    # cap at ~2.5 files: the third spill must evict the oldest
    capped = ExecutionEngine(
        cache_dir=tmp_path, disk_cache_bytes=int(2.5 * one_file_bytes)
    )
    cache = capped.disk_cache
    for seed in (5, 6, 7):
        ai, bi, ci, di = _batch(m=32, n=128, seed=seed)
        capped.solve_batch(ai, bi, ci, di, k=0, fingerprint=True)
    assert cache.evictions >= 1
    assert cache.nbytes() <= cache.max_bytes
    assert len(cache.files()) < 4  # seed-4's file was oldest → gone first


def test_torn_cache_file_is_dropped_not_fatal(tmp_path):
    a, b, c, d = _batch(seed=8)
    eng1 = ExecutionEngine(cache_dir=tmp_path)
    eng1.solve_batch(a, b, c, d, k=0, fingerprint=True)
    path = eng1.disk_cache.files()[0]
    with open(path, "wb") as fh:
        fh.write(b"not an npz")

    eng2 = ExecutionEngine(cache_dir=tmp_path)
    info: dict = {}
    x = eng2.solve_batch(a, b, c, d, k=0, fingerprint=True, info=info)
    # torn file: re-factored, file replaced by a good one
    assert info["factorization"] == "factored"
    assert eng2.stats.factorizations_built == 1
    assert np.isfinite(x).all()
    eng3 = ExecutionEngine(cache_dir=tmp_path)
    eng3.solve_batch(a, b, c, d, k=0, fingerprint=True)
    assert eng3.stats.factorizations_built == 0


def test_cache_filenames_are_digest_named():
    key = (16, 64, "<f8", 0, "", True, "ab" * 16)
    name = _key_filename(key)
    assert name.startswith("ab" * 16)
    assert "16x64" in name and "float64" in name and "cyclic" in name
    assert name.endswith(".npz")


def test_disk_cache_rejects_bad_cap(tmp_path):
    with pytest.raises(ValueError, match="max_bytes"):
        FactorizationDiskCache(tmp_path, max_bytes=0)
