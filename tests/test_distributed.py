"""Distributed N-partition backend: slab math, pool, registry, bugfix
regressions.

Covers the tentpole pipeline (partition → local eliminate → reduced
interface solve → backsub) at three levels — the in-process reference,
the multiprocess backend (bitwise identical to the reference by
construction: same functions, same values), and the registry/router
negotiation — plus the satellite regressions this PR ships:

* executor oversubscription floor (``max(32, cpus)`` → proportional cap)
* disk-cache LRU determinism on coarse-mtime filesystems
* the generic cyclic fallback's merged inner-solve stage timings
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.backends.registry import default_registry, reject_reason
from repro.backends.request import SolveRequest
from repro.distributed import (
    DistributedWorkerError,
    effective_ranks,
    get_pool,
    partitioned_solve_reference,
    slab_bounds,
)
from repro.distributed.backend import DistributedBackend
from repro.engine import default_engine
from repro.util.pools import (
    EXECUTOR_HARD_CAP,
    EXECUTOR_PER_CPU,
    executor_cap,
)
from repro.workloads.generators import huge_system_batch, random_batch


def _engine_reference(a, b, c, d):
    """The k=0 engine solve every distributed result is compared to."""
    return repro.solve_batch(a, b, c, d, backend="engine", k=0)


# ------------------------------------------------------------ partition


def test_slab_bounds_cover_and_chain():
    for n, p in [(8, 1), (8, 4), (17, 3), (100, 7), (9, 4)]:
        bounds = slab_bounds(n, p)
        assert bounds[0][0] == 0 and bounds[-1][1] == n
        for (lo, hi), (lo2, _) in zip(bounds, bounds[1:]):
            assert hi == lo2
        assert all(hi - lo >= 2 for lo, hi in bounds)


def test_effective_ranks_clamps_to_slab_minimum():
    assert effective_ranks(8, 4) == 4
    assert effective_ranks(7, 4) == 3  # 7 rows can hold 3 slabs of >= 2
    assert effective_ranks(3, 4) == 1
    assert effective_ranks(10 ** 6, 2) == 2


def test_reference_matches_engine_all_ranks():
    a, b, c, d = random_batch(5, 257, seed=3)
    ref = _engine_reference(a, b, c, d)
    for p in (1, 2, 3, 4, 8):
        x = partitioned_solve_reference(a, b, c, d, p)
        assert np.allclose(x, ref, rtol=1e-10, atol=1e-12), p


@settings(max_examples=30, deadline=None)
@given(
    ranks=st.integers(min_value=1, max_value=4),
    n=st.integers(min_value=8, max_value=200),
    seed=st.integers(min_value=0, max_value=10_000),
    data=st.data(),
)
def test_partition_placement_invariance(ranks, n, seed, data):
    """Any valid slab placement yields the same solution (cross-rank
    determinism): the reduced interface system is exact, so where the
    cuts land must not matter beyond roundoff."""
    a, b, c, d = random_batch(3, n, seed=seed)
    ref = _engine_reference(a, b, c, d)

    # random interior boundaries with every slab >= 2 rows
    cuts = sorted(
        data.draw(
            st.lists(
                st.integers(min_value=2, max_value=n - 2),
                min_size=ranks - 1,
                max_size=ranks - 1,
                unique=True,
            )
        )
    )
    edges = [0] + cuts + [n]
    if any(hi - lo < 2 for lo, hi in zip(edges, edges[1:])):
        edges = None  # fall back to the canonical near-equal split

    bounds = (
        list(zip(edges, edges[1:])) if edges is not None else None
    )
    x = partitioned_solve_reference(a, b, c, d, ranks, bounds=bounds)
    assert np.allclose(x, ref, rtol=1e-9, atol=1e-11)
    # the canonical split agrees with itself bit for bit on repeat
    x2 = partitioned_solve_reference(a, b, c, d, ranks, bounds=bounds)
    assert np.array_equal(x, x2)


# -------------------------------------------------------------- backend


def test_backend_bitwise_matches_reference():
    a, b, c, d = huge_system_batch(513, m=4, seed=11)
    for p in (2, 3, 4):
        x = repro.solve_batch(a, b, c, d, backend="distributed", ranks=p)
        ref = partitioned_solve_reference(a, b, c, d, p)
        assert np.array_equal(x, ref), f"ranks={p} not bitwise"


def test_backend_elementwise_close_to_engine():
    a, b, c, d = huge_system_batch(1024, m=3, seed=1)
    ref = _engine_reference(a, b, c, d)
    for p in (2, 4):
        x = repro.solve_batch(a, b, c, d, backend="distributed", ranks=p)
        assert np.allclose(x, ref, rtol=1e-10, atol=1e-12)


def test_single_rank_delegates_bitwise_to_engine():
    a, b, c, d = random_batch(4, 128, seed=2)
    ref = _engine_reference(a, b, c, d)
    x = repro.solve_batch(a, b, c, d, backend="distributed", ranks=1)
    assert np.array_equal(x, ref)
    assert repro.last_trace().ranks == 1


def test_backend_honors_out():
    a, b, c, d = random_batch(3, 96, seed=5)
    out = np.empty_like(d)
    x = repro.solve_batch(
        a, b, c, d, backend="distributed", ranks=2, out=out
    )
    assert x is out
    assert np.array_equal(out, partitioned_solve_reference(a, b, c, d, 2))


def test_trace_carries_ranks_and_stages():
    a, b, c, d = random_batch(3, 200, seed=8)
    repro.solve_batch(a, b, c, d, backend="distributed", ranks=3)
    tr = repro.last_trace()
    assert tr.backend == "distributed"
    assert tr.ranks == 3
    names = [s.name for s in tr.stages]
    for want in (
        "partition",
        "local-eliminate [3 ranks]",
        "reduced-solve",
        "backsub [3 ranks]",
        "comms",
    ):
        assert want in names, names


def test_periodic_via_fallback():
    rng = np.random.default_rng(4)
    m, n = 3, 128
    a = rng.standard_normal((m, n))
    c = rng.standard_normal((m, n))
    b = 4.0 + np.abs(a) + np.abs(c)
    d = rng.standard_normal((m, n))
    ref = repro.solve_periodic_batch(a, b, c, d, backend="engine")
    x = repro.solve_periodic_batch(
        a, b, c, d, backend="distributed", ranks=2
    )
    assert np.allclose(x, ref, rtol=1e-9, atol=1e-11)
    tr = repro.last_trace()
    assert tr.periodic
    assert any(s.name.startswith("cyclic-y:") for s in tr.stages)


def test_float32_supported():
    a, b, c, d = random_batch(3, 256, dtype=np.float32, seed=6)
    ref = _engine_reference(a, b, c, d)
    x = repro.solve_batch(a, b, c, d, backend="distributed", ranks=2)
    assert x.dtype == np.float32
    assert np.allclose(x, ref, rtol=1e-4, atol=1e-5)


# ----------------------------------------------------- registry / router


def test_registry_negotiation():
    names = [name for name, _ in repro.list_backends()]
    assert "distributed" in names

    a, b, c, d = random_batch(4, 64, seed=0)
    req = SolveRequest.build(a, b, c, d, coerced=True, ranks=2)
    engine = default_registry().get("engine")
    dist = default_registry().get("distributed")
    assert reject_reason(engine.capabilities(), req) is not None
    assert reject_reason(dist.capabilities(), req) is None


def test_auto_routes_ranks_to_distributed():
    a, b, c, d = random_batch(4, 96, seed=0)
    repro.solve_batch(a, b, c, d, ranks=2)
    tr = repro.last_trace()
    assert tr.backend == "distributed"
    assert tr.decision is not None and tr.decision.chosen == "distributed"


def test_plain_auto_never_picks_distributed():
    a, b, c, d = random_batch(4, 96, seed=0)
    repro.solve_batch(a, b, c, d)
    assert repro.last_trace().backend == "engine"


def test_gpusim_prices_ranks():
    a, b, c, d = random_batch(4, 256, seed=9)
    x = repro.solve_batch(a, b, c, d, backend="gpusim", ranks=4)
    tr = repro.last_trace()
    assert tr.ranks == 4
    assert tr.predicted_total_us is not None and tr.predicted_total_us > 0
    assert np.array_equal(x, partitioned_solve_reference(a, b, c, d, 4))


# -------------------------------------------------------------- the pool


def test_worker_crash_raises_typed_error_and_recovers():
    a, b, c, d = random_batch(3, 64, seed=7)
    backend = DistributedBackend(timeout_s=30.0)
    # warm solve so the pool exists
    x = backend.solve_batch(a, b, c, d, ranks=2)
    assert np.array_equal(x, partitioned_solve_reference(a, b, c, d, 2))

    pool = get_pool(2)
    pool._procs[0].kill()
    with pytest.raises(DistributedWorkerError):
        backend.solve_batch(a, b, c, d, ranks=2)
    assert pool.broken

    # the next request rebuilds the pool and succeeds
    x = backend.solve_batch(a, b, c, d, ranks=2)
    assert np.array_equal(x, partitioned_solve_reference(a, b, c, d, 2))
    assert get_pool(2) is not pool


# ----------------------------------------- satellite: executor caps


def test_executor_cap_is_proportional_not_floored():
    assert executor_cap(1) == max(2, EXECUTOR_PER_CPU)
    assert executor_cap(2) == 8
    assert executor_cap(64) == EXECUTOR_HARD_CAP
    cpus = os.cpu_count() or 1
    assert executor_cap() <= max(2, EXECUTOR_PER_CPU * cpus)
    assert executor_cap() <= EXECUTOR_HARD_CAP


def test_backend_caps_respect_executor_cap():
    for name in ("engine", "threaded"):
        caps = default_registry().get(name).capabilities()
        assert caps.max_workers == executor_cap()
        # the old bug: max(32, cpus) pinned >= 32 onto small hosts
        assert caps.max_workers <= EXECUTOR_HARD_CAP


def test_engine_thread_pool_never_oversubscribes():
    engine = default_engine()
    pool = engine.thread_pool(10_000)
    assert pool._max_workers <= executor_cap()


# --------------------------------------- satellite: disk-cache recency


def test_diskcache_lru_deterministic_on_coarse_mtime(tmp_path):
    from repro.engine.diskcache import FactorizationDiskCache

    cache = FactorizationDiskCache(tmp_path, max_bytes=1)
    # simulate a coarse-mtime filesystem: every file lands on the same
    # whole-second stamp...
    paths = []
    for i in range(4):
        p = tmp_path / f"f{i}.npz"
        p.write_bytes(b"x" * 10)
        os.utime(p, ns=(1_000_000_000, 1_000_000_000))
        paths.append(str(p))
    # ...ties break on path, so the order is deterministic
    assert cache.files() == sorted(paths)

    # freshening always advances: repeated touches within one tick
    # must still produce strictly increasing stamps
    stamps = []
    for _ in range(3):
        cache._freshen(paths[0])
        stamps.append(os.stat(paths[0]).st_mtime_ns)
    assert stamps == sorted(set(stamps))
    # the freshened file is now the newest — evicted last
    assert cache.files()[-1] == paths[0]


# --------------------------------- satellite: cyclic fallback timings


def test_periodic_fallback_merges_stages_and_honors_out():
    from repro.backends.registry import default_registry

    rng = np.random.default_rng(12)
    m, n = 3, 64
    a = rng.standard_normal((m, n))
    c = rng.standard_normal((m, n))
    b = 4.0 + np.abs(a) + np.abs(c)
    d = rng.standard_normal((m, n))

    numpy_backend = default_registry().get("numpy")
    out = np.empty_like(d)
    x = numpy_backend.solve_batch(a, b, c, d, periodic=True, out=out)
    assert x is out

    ref = repro.solve_periodic_batch(a, b, c, d, backend="engine")
    assert np.allclose(out, ref, rtol=1e-9, atol=1e-11)

    trace = numpy_backend.instrument()
    names = [s.name for s in trace.stages]
    assert names[0] == "cyclic-reduce" and names[-1] == "cyclic-correction"
    # both inner solves' stage breakdowns survive, prefixed
    assert any(nm.startswith("cyclic-y:") for nm in names)
    assert any(nm.startswith("cyclic-q:") for nm in names)
