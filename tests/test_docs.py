"""Documentation integrity: the shipped docs exist and their claims run.

The tutorial's code blocks are executed verbatim; the other documents
are checked for presence and for section anchors the README points to.
"""

import re
from pathlib import Path

import numpy as np
import pytest

ROOT = Path(__file__).resolve().parent.parent


@pytest.mark.parametrize(
    "name",
    ["README.md", "DESIGN.md", "EXPERIMENTS.md",
     "docs/ALGORITHMS.md", "docs/GPU_MODEL.md", "docs/TUTORIAL.md"],
)
def test_doc_exists_and_nonempty(name):
    path = ROOT / name
    assert path.exists(), name
    assert len(path.read_text()) > 500, name


def test_tutorial_code_blocks_execute():
    """Every python block in the tutorial runs in one shared namespace."""
    text = (ROOT / "docs/TUTORIAL.md").read_text()
    blocks = re.findall(r"```python\n(.*?)```", text, flags=re.S)
    assert len(blocks) >= 4
    ns = {"np": np}
    for block in blocks:
        exec(compile(block, "<tutorial>", "exec"), ns)  # noqa: S102
    # the tutorial's final solution must match the dense solve
    x = ns["x"]
    n = 8
    A = (np.diag(np.full(n, 3.0)) + np.diag(np.full(n - 1, -1.0), -1)
         + np.diag(np.full(n - 1, -1.0), 1))
    ref = np.linalg.solve(A, np.arange(1.0, 9.0))
    assert np.allclose(np.asarray(x).reshape(-1), ref, atol=1e-10)


def test_tutorial_numbers_are_current():
    """The printed d' row in the tutorial matches the implementation."""
    from repro.core.pcr import pcr_sweep

    n = 8
    a = np.full(n, -1.0); a[0] = 0.0
    c = np.full(n, -1.0); c[-1] = 0.0
    b = np.full(n, 3.0)
    d = np.arange(1.0, 9.0)
    _, _, _, rd = pcr_sweep(a[None], b[None], c[None], d[None], 1)
    expected = [1.667, 3.333, 5.0, 6.667, 8.333, 10.0, 11.667, 10.333]
    assert np.allclose(rd[0], expected, atol=2e-3)


def test_experiments_md_is_regenerable():
    """EXPERIMENTS.md is exactly the generator's current output."""
    from repro.analysis.report import experiments_markdown

    on_disk = (ROOT / "EXPERIMENTS.md").read_text()
    assert on_disk == experiments_markdown()


def test_readme_examples_exist():
    text = (ROOT / "README.md").read_text()
    for name in re.findall(r"`(\w+\.py)`", text):
        if name in ("index.html",):
            continue
        assert (ROOT / "examples" / name).exists() or name == "conftest.py", name
