"""Solve-plan engine: plan caching, workspace reuse, sharding, parity.

The engine's contract is strict: for every ``(M, N, k, fuse,
n_windows)`` signature its result must be **bitwise identical** to the
single-call :class:`~repro.core.hybrid.HybridSolver` reference path —
cold (first solve, plans + allocates), warm (cached plan, pooled
workspace), and sharded (``workers=W``) alike.
"""

import numpy as np
import pytest

import repro
from repro.core.hybrid import HybridReport, HybridSolver
from repro.core.pthomas import subsystem_lengths
from repro.core.solver import solve_batch
from repro.engine import (
    ExecutionEngine,
    PlanWorkspace,
    SolvePlan,
    build_plan,
    execute_plan,
    shard_bounds,
)

from .conftest import make_batch, max_err, reference_solve

# the (M, N, k, fuse, n_windows) matrix mirroring test_hybrid/test_tiled_pcr
SIGNATURES = [
    (1, 64, 2, False, 1),
    (1, 1024, 6, False, 1),
    (4, 511, 3, True, 1),
    (17, 128, 4, False, 2),
    (2, 40, 2, True, 3),
    (3, 300, None, False, 1),
    (33, 256, None, True, 1),
    (600, 128, None, False, 1),
    (1200, 64, None, False, 1),  # heuristic k = 0 -> transposed Thomas
    (1200, 64, None, True, 2),
]


@pytest.fixture
def engine():
    return ExecutionEngine()


# ---------------------------------------------------------------------------
# bitwise parity with the reference solver
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("m,n,k,fuse,nw", SIGNATURES)
def test_engine_bitwise_equals_hybrid(engine, m, n, k, fuse, nw):
    a, b, c, d = make_batch(m, n, seed=m * 1000 + n)
    ref = HybridSolver(k=k, fuse=fuse, n_windows=nw).solve_batch(a, b, c, d)
    got = engine.solve_batch(a, b, c, d, k=k, fuse=fuse, n_windows=nw)
    assert np.array_equal(ref, got)
    assert got.dtype == ref.dtype


@pytest.mark.parametrize("m,n,k,fuse,nw", SIGNATURES)
def test_warm_plan_bitwise_equals_cold(engine, m, n, k, fuse, nw):
    a, b, c, d = make_batch(m, n, seed=m + n)
    cold = engine.solve_batch(a, b, c, d, k=k, fuse=fuse, n_windows=nw)
    warm = engine.solve_batch(a, b, c, d, k=k, fuse=fuse, n_windows=nw)
    warm2 = engine.solve_batch(a, b, c, d, k=k, fuse=fuse, n_windows=nw)
    assert np.array_equal(cold, warm)
    assert np.array_equal(cold, warm2)
    assert engine.stats.plan_hits >= 2
    # each warm call either reused a pooled workspace or skipped
    # elimination entirely via the fingerprint/factorization cache
    assert (
        engine.stats.workspaces_reused + engine.stats.rhs_only_solves >= 2
    )


@pytest.mark.parametrize("workers", [2, 3, 8])
@pytest.mark.parametrize(
    "m,n,k,fuse",
    [(7, 200, 2, False), (64, 256, None, True), (1100, 96, None, False)],
)
def test_sharded_solve_bitwise_independent_of_workers(
    engine, workers, m, n, k, fuse
):
    a, b, c, d = make_batch(m, n, seed=workers)
    serial = engine.solve_batch(a, b, c, d, k=k, fuse=fuse)
    sharded = engine.solve_batch(a, b, c, d, k=k, fuse=fuse, workers=workers)
    assert np.array_equal(serial, sharded)
    assert engine.stats.sharded_solves >= 1


def test_sharded_k_frozen_from_full_batch(engine):
    # M = 1100 selects k = 0 (Table III); a shard of ~275 rows alone
    # would select k = 6 — the sub-plans must inherit the full-M choice.
    a, b, c, d = make_batch(1100, 64, seed=9)
    engine.solve_batch(a, b, c, d, workers=4)
    assert engine.last_report.k == 0


def test_engine_result_is_correct(engine):
    a, b, c, d = make_batch(40, 333, seed=3)
    x = engine.solve_batch(a, b, c, d, workers=2)
    assert max_err(x, reference_solve(a, b, c, d)) < 1e-12


def test_results_never_alias_pooled_workspaces(engine):
    # Regression: back-to-back same-plan solves must not overwrite a
    # previously returned result (for M = 1 the transposed Thomas
    # output is a contiguous view of workspace memory unless copied).
    for m, n in [(1, 16), (3, 64), (1200, 32)]:
        a, b, c, d = make_batch(m, n, seed=n)
        x1 = engine.solve_batch(a, b, c, d)
        keep = x1.copy()
        d2 = d + 1.0
        engine.solve_batch(a, b, c, d2)
        assert np.array_equal(x1, keep), (m, n)


# ---------------------------------------------------------------------------
# dtype preservation
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("dtype", [np.float32, np.float64])
@pytest.mark.parametrize(
    "route",
    ["hybrid", "hybrid-fused", "engine", "engine-workers", "solve_batch"],
)
def test_dtype_preserved(dtype, route):
    a, b, c, d = make_batch(6, 200, dtype=dtype, seed=5)
    if route == "hybrid":
        x = HybridSolver(k=3).solve_batch(a, b, c, d)
    elif route == "hybrid-fused":
        x = HybridSolver(k=3, fuse=True).solve_batch(a, b, c, d)
    elif route == "engine":
        x = ExecutionEngine().solve_batch(a, b, c, d, k=3)
    elif route == "engine-workers":
        x = ExecutionEngine().solve_batch(a, b, c, d, k=3, workers=3)
    else:
        x = solve_batch(a, b, c, d, k=3)
    assert x.dtype == np.dtype(dtype)
    assert x.shape == (6, 200)
    assert np.isfinite(x).all()


def test_float32_thomas_path_dtype():
    a, b, c, d = make_batch(1200, 48, dtype=np.float32, seed=2)
    eng = ExecutionEngine()
    x = eng.solve_batch(a, b, c, d)
    assert eng.last_report.k == 0
    assert x.dtype == np.float32


# ---------------------------------------------------------------------------
# input coercion (solve_batch check=False on lists)
# ---------------------------------------------------------------------------


def test_list_inputs_with_check_false():
    a = [[0.0, 1.0, 1.0, 1.0]]
    b = [[3.0, 3.0, 3.0, 3.0]]
    c = [[1.0, 1.0, 1.0, 0.0]]
    d = [[1.0, 2.0, 3.0, 4.0]]
    x = solve_batch(a, b, c, d, check=False)
    ref = solve_batch(a, b, c, d, check=True)
    assert x.dtype == np.float64
    assert np.array_equal(x, ref)


def test_integer_lists_promote_to_float64():
    # integer inputs with check=False must not truncate float results
    a = [[0, 1, 1, 1]]
    b = [[3, 3, 3, 3]]
    c = [[1, 1, 1, 0]]
    d = [[1, 2, 3, 4]]
    for algo in ("auto", "thomas", "cr", "pcr", "rd"):
        x = solve_batch(a, b, c, d, algorithm=algo, check=False)
        assert x.dtype == np.float64, algo
        assert max_err(x, reference_solve(a, b, c, d)) < 1e-12, algo


# ---------------------------------------------------------------------------
# plans and the cache
# ---------------------------------------------------------------------------


def test_plan_describes_schedule():
    plan = build_plan(8, 256, np.float64, k=3, n_windows=2)
    assert plan.g == 8
    assert plan.subtile == 8
    assert plan.lead_in == 7
    assert plan.window_bounds == (0, 128, 256)
    assert plan.rounds() == 34  # ceil(135/8) + ceil(135/8)
    info = plan.describe()
    assert info["backend"] == "tiled-pcr+p-thomas"
    assert info["subsystems"] == 64


def test_plan_cache_hit_and_eviction():
    eng = ExecutionEngine(max_plans=2)
    p1 = eng.plan_for(4, 64, np.float64, k=2)
    assert eng.plan_for(4, 64, np.float64, k=2) is p1
    assert eng.stats.plan_hits == 1
    eng.plan_for(8, 64, np.float64, k=2)
    eng.plan_for(16, 64, np.float64, k=2)  # evicts p1 (LRU)
    assert eng.stats.plan_evictions == 1
    assert eng.plan_for(4, 64, np.float64, k=2) is not p1


def test_plan_cache_distinguishes_signatures():
    eng = ExecutionEngine()
    base = dict(k=2, fuse=False, n_windows=1, subtile_scale=1)
    p = eng.plan_for(4, 64, np.float64, **base)
    assert eng.plan_for(4, 64, np.float32, **base) is not p
    assert eng.plan_for(4, 64, np.float64, **{**base, "fuse": True}) is not p
    assert eng.plan_for(4, 64, np.float64, **{**base, "k": 3}) is not p
    assert eng.plan_for(4, 64, np.float64, **base) is p


def test_workspace_matches_plan():
    plan = build_plan(4, 128, np.float64, k=2)
    ws = PlanWorkspace(plan)
    assert ws.fits(plan)
    assert ws.nbytes > 0
    other = build_plan(4, 128, np.float64, k=3)
    assert not ws.fits(other)
    with pytest.raises(ValueError):
        a, b, c, d = make_batch(4, 128)
        execute_plan(other, ws, a, b, c, d)


def test_clear_drops_plans_but_engine_stays_usable():
    eng = ExecutionEngine()
    a, b, c, d = make_batch(4, 64, seed=1)
    x1 = eng.solve_batch(a, b, c, d)
    eng.clear()
    assert eng.stats.workspace_bytes == 0
    x2 = eng.solve_batch(a, b, c, d)
    assert np.array_equal(x1, x2)


def test_shard_bounds_cover_batch():
    for m, w in [(1, 4), (7, 3), (100, 8), (5, 5), (3, 100)]:
        bounds = shard_bounds(m, w)
        assert bounds[0][0] == 0 and bounds[-1][1] == m
        for (l0, h0), (l1, h1) in zip(bounds, bounds[1:]):
            assert h0 == l1 and h0 > l0
        assert len(bounds) <= min(m, w)


def test_default_engine_backs_public_api():
    eng = repro.default_engine()
    before = eng.stats.solves
    a, b, c, d = make_batch(3, 96, seed=11)
    repro.solve_batch(a, b, c, d)
    assert eng.stats.solves == before + 1


# ---------------------------------------------------------------------------
# report parity & vectorized elimination count
# ---------------------------------------------------------------------------


def test_last_report_matches_hybrid(engine):
    a, b, c, d = make_batch(5, 300, seed=8)
    hs = HybridSolver(k=3)
    hs.solve_batch(a, b, c, d)
    engine.solve_batch(a, b, c, d, k=3)
    r1, r2 = hs.last_report, engine.last_report
    for attr in ("m", "n", "k", "k_source", "subsystems", "fused",
                 "n_windows", "pcr_eliminations", "thomas_eliminations"):
        assert getattr(r1, attr) == getattr(r2, attr), attr
    assert r1.tiling.rows_loaded == r2.tiling.rows_loaded
    assert r1.tiling.eliminations == r2.tiling.eliminations


def test_thomas_eliminations_vectorized_matches_loop():
    for n, k in [(64, 0), (64, 3), (100, 2), (7, 3), (1, 0), (33, 5)]:
        rep = HybridReport(m=4, n=n, k=k)
        # the pre-vectorization definition, kept as the oracle
        g = 1 << k
        expected = 0
        for j in range(g):
            length = -(-(n - j) // g)
            if length > 0:
                expected += 2 * length - 1
        expected *= 4
        assert rep.thomas_eliminations == expected, (n, k)
        # cached: repeated access returns the same object state
        assert rep.thomas_eliminations == expected


def test_subsystem_lengths_partition_n():
    for n, k in [(64, 3), (100, 2), (7, 3), (1, 0)]:
        lengths = subsystem_lengths(n, k)
        assert lengths.sum() == n
