"""Thread-safety stress: one engine hammered from many threads.

The service tier runs ``ExecutionEngine.run()`` concurrently from its
dispatch executor while direct callers keep using the same default
engine from their own threads.  These tests drive the shared mutable
state — the plan/factorization LRUs, the workspace pools, the sharding
thread pool, and the disk spill tier's mtime-LRU eviction — hard
enough that a missing lock or a shutdown race surfaces as an exception
or a wrong answer.
"""

from __future__ import annotations

import threading

import numpy as np

import repro
from repro.engine import ExecutionEngine
from repro.workloads import random_batch

THREADS = 8
ITERS = 12


def hammer(worker, threads=THREADS):
    """Run ``worker(i)`` on N threads; re-raise the first failure."""
    errors: list = []

    def wrap(i):
        try:
            worker(i)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    ts = [threading.Thread(target=wrap, args=(i,)) for i in range(threads)]
    for t in ts:
        t.start()
    for t in ts:
        t.join(120.0)
    assert not any(t.is_alive() for t in ts), "stress worker hung"
    if errors:
        raise errors[0]


def test_concurrent_solves_share_plan_and_workspace_pools():
    engine = ExecutionEngine(pool_size=2)
    batches = [random_batch(8, 128, seed=s) for s in range(4)]
    refs = [repro.solve_batch(*bt, k=0) for bt in batches]

    def worker(i):
        for j in range(ITERS):
            which = (i + j) % len(batches)
            x = engine.solve_batch(*batches[which], k=0)
            assert np.array_equal(x, refs[which])

    hammer(worker)
    engine.shutdown()


def test_concurrent_fingerprint_reuse_under_tiny_lru():
    # max_factorizations=2 with 4 rotating coefficient sets: every
    # thread keeps evicting the factorizations the others just built
    engine = ExecutionEngine(max_factorizations=2)
    batches = [random_batch(4, 64, seed=100 + s) for s in range(4)]
    refs = [repro.solve_batch(*bt, k=0) for bt in batches]

    def worker(i):
        for j in range(ITERS):
            which = (i + j) % len(batches)
            a, b, c, d = batches[which]
            x = engine.solve_batch(a, b, c, d, k=0, fingerprint=True)
            assert np.array_equal(x, refs[which])

    hammer(worker)
    engine.shutdown()


def test_concurrent_engines_share_disk_cache_with_eviction_churn(tmp_path):
    # two engines, one spill directory, a cap small enough that every
    # store evicts someone else's file: loads must survive files
    # vanishing between listing and np.load (torn/missing-file path)
    batches = [random_batch(4, 64, seed=200 + s) for s in range(6)]
    refs = [repro.solve_batch(*bt, k=0) for bt in batches]
    probe = ExecutionEngine(cache_dir=tmp_path)
    pa, pb, pc, pd = batches[0]
    probe.solve_batch(pa, pb, pc, pd, k=0, fingerprint=True)
    assert probe.disk_cache is not None
    one_file = max(probe.disk_cache.nbytes(), 1)
    probe.shutdown()

    engines = [
        ExecutionEngine(
            max_factorizations=1,
            cache_dir=tmp_path,
            disk_cache_bytes=2 * one_file,
        )
        for _ in range(2)
    ]

    def worker(i):
        engine = engines[i % len(engines)]
        for j in range(ITERS):
            which = (i + j) % len(batches)
            a, b, c, d = batches[which]
            x = engine.solve_batch(a, b, c, d, k=0, fingerprint=True)
            assert np.array_equal(x, refs[which])

    hammer(worker)
    evictions = sum(e.disk_cache.evictions for e in engines)
    assert evictions > 0, "cap never forced an eviction; stress is vacuous"
    for e in engines:
        e.shutdown()


def test_thread_pool_grows_while_sharded_solves_run():
    # workers=2..8 concurrently: the sharding executor is swapped for a
    # bigger one while siblings still submit to the old one (the
    # retired-executor graveyard keeps submit-after-shutdown away)
    engine = ExecutionEngine(pool_size=8)
    a, b, c, d = random_batch(32, 128, seed=300)
    ref = repro.solve_batch(a, b, c, d, k=0)

    def worker(i):
        for j in range(ITERS):
            workers = 2 + ((i + j) % 4) * 2
            x = engine.solve_batch(a, b, c, d, k=0, workers=workers)
            assert np.array_equal(x, ref)

    hammer(worker)
    engine.shutdown()


def test_service_and_direct_callers_share_default_engine():
    # the deployment shape: a SyncSolveClient coalescing in its own
    # loop thread while other threads call repro.solve_batch directly
    from repro.service import ServiceConfig, SyncSolveClient

    frags = [random_batch(4, 64, seed=400 + s) for s in range(THREADS)]
    refs = [repro.solve_batch(*bt, k=0) for bt in frags]

    with SyncSolveClient(ServiceConfig(max_wait_us=1000.0)) as client:
        def worker(i):
            for j in range(ITERS // 2):
                if (i + j) % 2:
                    x = client.solve(*frags[i], timeout=120.0)
                else:
                    x = repro.solve_batch(*frags[i], k=0)
                assert np.array_equal(x, refs[i])

        hammer(worker)
