"""Integration: every shipped example runs green end to end.

The examples each enforce their own physics check and exit nonzero on
failure, so running them *is* an integration test of the public API on
realistic workloads.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

ALL = [
    "quickstart.py",
    "cubic_spline.py",
    "device_explorer.py",
    "adi_fluid.py",
    "poisson_multigrid.py",
    "heat_equation.py",
    "ring_diffusion.py",
    "streaming_smoother.py",
    "smoke_transport.py",
    "fast_poisson.py",
]


@pytest.mark.parametrize("script", ALL)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_examples_directory_complete():
    shipped = {p.name for p in EXAMPLES.glob("*.py")}
    assert set(ALL) <= shipped
    assert "quickstart.py" in shipped
