"""Functional SIMT executor and the executable kernels.

The headline tests cross-validate the *measured* ledgers (derived from
actual addresses at execution time) against the *closed-form* ledgers
in repro.kernels — the two independent accounts of the same kernels
must agree.
"""

import numpy as np
import pytest

from repro.core.layout import Layout
from repro.core.pcr import pcr_sweep
from repro.gpusim.device import GTX480
from repro.gpusim.executor import BlockContext, ExecutionStats, launch
from repro.kernels.exec_kernels import run_pthomas, run_tiled_pcr
from repro.kernels.pthomas_kernel import pthomas_counters

from .conftest import make_batch, max_err, reference_solve


# ---- executor primitives ---------------------------------------------------


def test_launch_counts_blocks_and_barriers():
    def kernel(ctx):
        ctx.barrier()
        ctx.barrier()

    stats = launch(kernel, grid=5, threads=32, args=())
    assert stats.blocks == 5
    assert stats.barriers == 10


def test_load_global_coalesced_measurement():
    arr = np.arange(64, dtype=np.float64)

    def kernel(ctx):
        ctx.load_global(arr, ctx.tid)  # unit stride: 2 tx for 32 fp64

    stats = launch(kernel, grid=1, threads=32, args=())
    assert stats.load_transactions == 2
    assert stats.load_bytes_useful == 32 * 8
    assert stats.coalescing_efficiency == pytest.approx(1.0)


def test_load_global_strided_measurement():
    arr = np.zeros(32 * 64, dtype=np.float64)

    def kernel(ctx):
        ctx.load_global(arr, ctx.tid * 64)  # huge stride: 1 tx per lane

    stats = launch(kernel, grid=1, threads=32, args=())
    assert stats.load_transactions == 32
    assert stats.coalescing_efficiency == pytest.approx(8 / 128)


def test_store_global_masked():
    arr = np.zeros(64, dtype=np.float64)

    def kernel(ctx):
        mask = ctx.tid < 10
        ctx.store_global(arr, ctx.tid, ctx.tid.astype(float), mask)

    stats = launch(kernel, grid=1, threads=32, args=())
    assert np.array_equal(arr[:10], np.arange(10.0))
    assert np.all(arr[10:] == 0)
    assert stats.store_bytes_useful == 10 * 8


def test_shared_allocation_cap():
    def kernel(ctx):
        ctx.shared((4, 4096))  # 128 KiB > 48 KiB

    with pytest.raises(MemoryError):
        launch(kernel, grid=1, threads=32, args=())


def test_launch_validation():
    with pytest.raises(ValueError):
        launch(lambda ctx: None, grid=0, threads=32, args=())
    with pytest.raises(ValueError):
        launch(lambda ctx: None, grid=1, threads=4096, args=())


# ---- executable p-Thomas -----------------------------------------------------


@pytest.mark.parametrize("interleaved", [True, False])
@pytest.mark.parametrize("s,L", [(64, 32), (100, 17), (33, 8)])
def test_exec_pthomas_correct(interleaved, s, L):
    a, b, c, d = make_batch(s, L, seed=s + L)
    x, _ = run_pthomas(a, b, c, d, interleaved=interleaved)
    assert max_err(x, reference_solve(a, b, c, d)) < 1e-10


def test_exec_pthomas_layouts_agree():
    a, b, c, d = make_batch(48, 24, seed=3)
    x1, _ = run_pthomas(a, b, c, d, interleaved=True)
    x2, _ = run_pthomas(a, b, c, d, interleaved=False)
    assert np.allclose(x1, x2, atol=0, rtol=0)


def test_exec_pthomas_coalescing_gap_measured():
    """The Section III-B experiment, run: interleaved ≫ contiguous."""
    a, b, c, d = make_batch(256, 128, seed=4)
    _, inter = run_pthomas(a, b, c, d, interleaved=True)
    _, contig = run_pthomas(a, b, c, d, interleaved=False)
    assert inter.coalescing_efficiency > 0.9
    assert contig.coalescing_efficiency < 0.1
    assert contig.bus_bytes > 10 * inter.bus_bytes


def test_exec_pthomas_matches_closed_form_ledger():
    """Measured transactions == the analytic ledger (full warps,
    interleaved layout), up to two loads the executable kernel provably
    skips: ``a`` of the first row and ``c'`` of the last row are never
    used, so it never issues them; the closed form charges 4/2 values
    for every row."""
    s, L = 256, 64
    a, b, c, d = make_batch(s, L, seed=5)
    _, stats = run_pthomas(a, b, c, d, interleaved=True)
    analytic = pthomas_counters(s, L, 8, device=GTX480, layout=Layout.INTERLEAVED)
    skipped_bytes = 2 * s * 8          # one value per system, twice
    skipped_tx = 2 * (s // 32) * 2     # two fp64 transactions per warp
    assert stats.load_bytes_useful == analytic.traffic.load_bytes - skipped_bytes
    assert stats.store_bytes_useful == analytic.traffic.store_bytes
    assert stats.load_transactions == analytic.traffic.load_transactions - skipped_tx
    assert stats.store_transactions == analytic.traffic.store_transactions


# ---- executable buffered sliding window ------------------------------------------


@pytest.mark.parametrize("n,k", [(64, 2), (100, 3), (257, 4), (512, 5), (40, 2)])
def test_exec_window_equals_pcr_sweep(n, k):
    a, b, c, d = make_batch(1, n, seed=n * k)
    (ra, rb, rc, rd), _ = run_tiled_pcr(a[0], b[0], c[0], d[0], k)
    ref = pcr_sweep(a, b, c, d, k)
    for got, exp in zip((ra, rb, rc, rd), ref):
        assert np.allclose(got, exp[0], rtol=1e-12, atol=1e-13)


def test_exec_window_loads_each_row_once():
    n, k = 512, 4
    a, b, c, d = make_batch(1, n, seed=7)
    _, stats = run_tiled_pcr(a[0], b[0], c[0], d[0], k)
    # 4 channels x n rows x 8 B, each loaded exactly once
    assert stats.load_bytes_useful == 4 * n * 8


def test_exec_window_barrier_count():
    """(k + 1) barriers per round: the load plus one per PCR level
    (cache management is folded into each level's phase) — the Table I /
    window-model accounting."""
    n, k = 512, 4
    a, b, c, d = make_batch(1, n, seed=8)
    _, stats = run_tiled_pcr(a[0], b[0], c[0], d[0], k)
    fk = 2**k - 1
    rounds = -(-(n + 2 * fk) // (1 << k))
    assert stats.barriers == rounds * (k + 1)


def test_exec_window_smem_fits_device():
    """The window kernel's explicit allocation respects the 48 KiB cap
    even at k = 8 (the largest Table III configuration)."""
    n, k = 1024, 8
    a, b, c, d = make_batch(1, n, seed=9)
    (ra, rb, rc, rd), stats = run_tiled_pcr(a[0], b[0], c[0], d[0], k)
    ref = pcr_sweep(a, b, c, d, k)
    assert np.allclose(rb, ref[1][0], rtol=1e-12, atol=1e-13)


def test_exec_window_wrong_thread_count_rejected():
    from repro.gpusim.executor import launch
    from repro.kernels.exec_kernels import tiled_pcr_window_kernel

    a, b, c, d = make_batch(1, 64, seed=1)
    out = np.zeros((4, 64))
    with pytest.raises(ValueError, match="2\\^k"):
        launch(
            tiled_pcr_window_kernel, 1, 16,
            (a[0], b[0], c[0], d[0], out, 64, 3),
        )


# ---- measured bank conflicts and the executable CR level --------------------


def test_smem_access_measured_unit_stride():
    stats = ExecutionStats()
    ctx = BlockContext(0, 32, GTX480, stats)
    ctx.smem_access_measured(np.arange(32))  # one word per bank
    assert stats.smem_conflict_cycles == 1
    assert stats.smem_reads == 1


def test_smem_access_measured_stride_two():
    stats = ExecutionStats()
    ctx = BlockContext(0, 32, GTX480, stats)
    ctx.smem_access_measured(np.arange(32) * 2)  # 2-way conflicts
    assert stats.smem_conflict_cycles == 2


def test_smem_access_measured_broadcast():
    stats = ExecutionStats()
    ctx = BlockContext(0, 32, GTX480, stats)
    ctx.smem_access_measured(np.full(32, 7))  # same word: broadcast
    assert stats.smem_conflict_cycles == 1


def test_smem_access_measured_worst_case():
    stats = ExecutionStats()
    ctx = BlockContext(0, 32, GTX480, stats)
    ctx.smem_access_measured(np.arange(32) * 32)  # all lanes, one bank
    assert stats.smem_conflict_cycles == 32


def test_smem_access_measured_matches_gcd_model():
    """Measured degree == the analytic gcd model for every stride."""
    from repro.gpusim.sharedmem import bank_conflict_degree

    for stride in (1, 2, 3, 4, 5, 8, 16, 32, 33):
        stats = ExecutionStats()
        ctx = BlockContext(0, 32, GTX480, stats)
        ctx.smem_access_measured(np.arange(32) * stride)
        assert stats.smem_conflict_cycles == bank_conflict_degree(stride), stride


@pytest.mark.parametrize("conflict_free", [False, True])
@pytest.mark.parametrize("n", [64, 100, 256])
def test_exec_cr_forward_matches_core(conflict_free, n):
    from repro.core.cr import cr_forward_step
    from repro.kernels.exec_kernels import run_cr_forward

    a, b, c, d = make_batch(1, n, seed=n)
    (ra, rb, rc, rd), _ = run_cr_forward(
        a[0], b[0], c[0], d[0], conflict_free=conflict_free
    )
    ref = cr_forward_step(a, b, c, d)
    for got, exp in zip((ra, rb, rc, rd), ref):
        assert np.allclose(got, exp[0], atol=1e-12)


def test_exec_cr_conflicts_measured_gap():
    """The Göddeke-Strzodka claim, measured: the naive layout serializes
    2x on this level; the reordered layout does not."""
    from repro.kernels.exec_kernels import run_cr_forward

    a, b, c, d = make_batch(1, 512, seed=9)
    _, naive = run_cr_forward(a[0], b[0], c[0], d[0], conflict_free=False)
    _, fixed = run_cr_forward(a[0], b[0], c[0], d[0], conflict_free=True)
    assert naive.smem_conflict_cycles == 2 * fixed.smem_conflict_cycles
