"""Exhaustive small-size torture: every algorithm, every n in 1..40.

Boundary handling (first/last rows, odd sizes, subsystem tails, window
lead-ins) is where tridiagonal implementations break; this module
covers the full bottom of the size range densely rather than sampling.
"""

import numpy as np
import pytest

from repro.core.cr import cr_solve_batch
from repro.core.hybrid import HybridSolver
from repro.core.pcr import pcr_solve_batch
from repro.core.rd import rd_solve_batch
from repro.core.thomas import thomas_solve_batch

from .conftest import make_batch, max_err, reference_solve

SOLVERS = {
    "thomas": thomas_solve_batch,
    "cr": cr_solve_batch,
    "pcr": pcr_solve_batch,
    "rd": rd_solve_batch,
}


@pytest.mark.parametrize("n", range(1, 41))
def test_every_solver_every_small_n(n):
    a, b, c, d = make_batch(2, n, seed=1000 + n)
    ref = reference_solve(a, b, c, d)
    for name, solver in SOLVERS.items():
        assert max_err(solver(a, b, c, d), ref) < 1e-9, (name, n)


@pytest.mark.parametrize("n", range(2, 41))
def test_hybrid_every_small_n_every_k(n):
    a, b, c, d = make_batch(1, n, seed=2000 + n)
    ref = reference_solve(a, b, c, d)
    max_k = max(0, int(np.floor(np.log2(n))) - 1)
    for k in range(0, max_k + 1):
        x = HybridSolver(k=k).solve_batch(a, b, c, d)
        assert max_err(x, ref) < 1e-9, (n, k)


@pytest.mark.parametrize("n", range(4, 41, 3))
def test_tiled_window_every_small_n(n):
    from repro.core.pcr import pcr_sweep
    from repro.core.tiled_pcr import tiled_pcr_sweep

    a, b, c, d = make_batch(1, n, seed=3000 + n)
    max_k = max(1, int(np.floor(np.log2(n))) - 1)
    for k in range(1, max_k + 1):
        ref = pcr_sweep(a, b, c, d, k)
        out = tiled_pcr_sweep(a, b, c, d, k)
        for x, y in zip(out, ref):
            assert np.allclose(x, y, rtol=1e-13, atol=1e-14), (n, k)


@pytest.mark.parametrize("n", range(3, 30))
def test_periodic_every_small_n(n):
    from repro.core.periodic import solve_periodic

    rng = np.random.default_rng(4000 + n)
    a = rng.standard_normal(n)
    c = rng.standard_normal(n)
    b = 4.0 + np.abs(a) + np.abs(c)
    d = rng.standard_normal(n)
    x = solve_periodic(a, b, c, d)
    A = np.diag(b) + np.diag(a[1:], -1) + np.diag(c[:-1], 1)
    A[0, -1] = a[0]
    A[-1, 0] = c[-1]
    assert np.allclose(A @ x, d, atol=1e-8), n
