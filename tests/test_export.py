"""JSON artifact export."""

import json

import pytest

from repro.analysis.export import export_all
from repro.cli import main


@pytest.fixture(scope="module")
def exported(tmp_path_factory):
    out = tmp_path_factory.mktemp("results")
    files = export_all(out, include_accuracy=False)
    return out, files


def test_manifest_complete(exported):
    out, files = exported
    manifest = json.loads((out / "manifest.json").read_text())
    assert manifest["all_anchors_ok"] is True
    assert manifest["version"]
    assert sorted(manifest["files"]) == sorted(f for f in files if f != "manifest.json")


def test_every_figure_panel_written(exported):
    out, files = exported
    for name in ("fig12_n512.json", "fig12_n2048.json", "fig12_n16384.json",
                 "fig13_m2048.json", "fig13_m1.json",
                 "fig14_double.json", "fig14_single.json"):
        assert name in files
        data = json.loads((out / name).read_text())
        assert isinstance(data, list) and data


def test_tables_and_extensions_written(exported):
    out, files = exported
    for name in ("table1.json", "table2.json", "table3.json",
                 "anchors.json", "selection_map.json", "roofline.json"):
        assert name in files


def test_fig12_rows_self_consistent(exported):
    out, _ = exported
    rows = json.loads((out / "fig12_n512.json").read_text())
    for r in rows:
        assert r["speedup_seq"] == pytest.approx(
            r["mkl_seq_us"] / r["ours_us"], rel=1e-9
        )


def test_anchors_file_all_ok(exported):
    out, _ = exported
    anchors = json.loads((out / "anchors.json").read_text())
    assert len(anchors) >= 15
    assert all(a["ok"] for a in anchors)


def test_accuracy_skippable(exported):
    out, files = exported
    assert "accuracy_poisson.json" not in files


def test_cli_export_command(tmp_path, capsys):
    assert main(["export", "--out", str(tmp_path / "r"), "--no-accuracy"]) == 0
    out = capsys.readouterr().out
    assert "manifest.json" in out
    assert (tmp_path / "r" / "fig14_double.json").exists()
