"""Factorization reuse: Thomas and hybrid factor-once / solve-many."""

import numpy as np
import pytest

from repro.core.factorize import HybridFactorization, ThomasFactorization

from .conftest import make_batch, max_err, reference_solve


@pytest.mark.parametrize("m,n", [(1, 64), (4, 100), (16, 33)])
def test_thomas_factor_solve(m, n):
    a, b, c, d = make_batch(m, n, seed=m + n)
    fact = ThomasFactorization.factor(a, b, c)
    x = fact.solve(d)
    assert max_err(x, reference_solve(a, b, c, d)) < 1e-11


def test_thomas_factor_matches_direct():
    from repro.core.thomas import thomas_solve_batch

    a, b, c, d = make_batch(3, 50, seed=1)
    fact = ThomasFactorization.factor(a, b, c)
    assert np.allclose(fact.solve(d), thomas_solve_batch(a, b, c, d), atol=1e-13)


def test_thomas_factor_reuse_is_linear():
    a, b, c, d = make_batch(2, 40, seed=2)
    fact = ThomasFactorization.factor(a, b, c)
    x1 = fact.solve(d)
    x2 = fact.solve(3.0 * d)
    assert np.allclose(x2, 3.0 * x1, atol=1e-12)


def test_thomas_multi_rhs():
    m, n, r = 3, 32, 5
    a, b, c, _ = make_batch(m, n, seed=3)
    rng = np.random.default_rng(0)
    D = rng.standard_normal((m, n, r))
    fact = ThomasFactorization.factor(a, b, c)
    X = fact.solve(D)
    assert X.shape == (m, n, r)
    for j in range(r):
        assert max_err(X[:, :, j], reference_solve(a, b, c, D[:, :, j])) < 1e-11


def test_thomas_factor_shape_check():
    a, b, c, _ = make_batch(2, 16, seed=4)
    fact = ThomasFactorization.factor(a, b, c)
    with pytest.raises(ValueError, match="leading shape"):
        fact.solve(np.zeros((2, 17)))


def test_thomas_factor_properties():
    a, b, c, _ = make_batch(5, 20, seed=5)
    fact = ThomasFactorization.factor(a, b, c)
    assert fact.m == 5 and fact.n == 20


# ---- hybrid factorization -----------------------------------------------------


@pytest.mark.parametrize("m,n,k", [(1, 128, 3), (4, 100, 2), (8, 257, 4), (2, 64, 0)])
def test_hybrid_factor_solve(m, n, k):
    a, b, c, d = make_batch(m, n, seed=m * n + k)
    fact = HybridFactorization.factor(a, b, c, k=k)
    x = fact.solve(d)
    assert max_err(x, reference_solve(a, b, c, d)) < 1e-10


def test_hybrid_factor_default_k_heuristic():
    a, b, c, d = make_batch(64, 4096, seed=6)
    fact = HybridFactorization.factor(a, b, c)
    assert fact.k == 6  # Table III for M = 64
    x = fact.solve(d)
    assert max_err(x, reference_solve(a, b, c, d)) < 1e-10


def test_hybrid_factor_matches_hybrid_solver():
    from repro.core.hybrid import HybridSolver

    a, b, c, d = make_batch(4, 200, seed=7)
    fact = HybridFactorization.factor(a, b, c, k=3)
    x1 = fact.solve(d)
    x2 = HybridSolver(k=3).solve_batch(a, b, c, d)
    assert np.allclose(x1, x2, atol=1e-11)


def test_hybrid_factor_reuse_many_rhs():
    """Time-stepping pattern: one factorization, many solves."""
    m, n = 8, 256
    a, b, c, _ = make_batch(m, n, seed=8)
    fact = HybridFactorization.factor(a, b, c, k=4)
    rng = np.random.default_rng(1)
    for _ in range(5):
        d = rng.standard_normal((m, n))
        x = fact.solve(d)
        assert max_err(x, reference_solve(a, b, c, d)) < 1e-10


def test_hybrid_factor_multi_rhs():
    m, n, r, k = 2, 96, 4, 3
    a, b, c, _ = make_batch(m, n, seed=9)
    rng = np.random.default_rng(2)
    D = rng.standard_normal((m, n, r))
    fact = HybridFactorization.factor(a, b, c, k=k)
    X = fact.solve(D)
    for j in range(r):
        assert max_err(X[:, :, j], reference_solve(a, b, c, D[:, :, j])) < 1e-10


def test_hybrid_factor_stores_k_levels():
    a, b, c, _ = make_batch(1, 128, seed=10)
    fact = HybridFactorization.factor(a, b, c, k=4)
    assert len(fact.level_factors) == 4
    for k1, k2 in fact.level_factors:
        assert k1.shape == (1, 128)


def test_hybrid_factor_uninitialized():
    fact = HybridFactorization(k=2)
    with pytest.raises(RuntimeError, match="factor"):
        fact.solve(np.zeros((1, 8)))


def test_cn_time_stepping_with_factorization():
    """Integration: Crank–Nicolson reuses one factorization per run."""
    from repro.workloads.pde import crank_nicolson_system

    m, n = 16, 128
    alpha, dt = 0.1, 1e-3
    dx = 1.0 / (n - 1)
    xg = np.linspace(0, 1, n)
    u = np.sin(np.pi * xg)[None, :] * np.ones((m, 1))
    a, b, c, d = crank_nicolson_system(u, alpha, dt, dx)
    fact = HybridFactorization.factor(a, b, c, k=3)
    for _ in range(20):
        _, _, _, d = crank_nicolson_system(u, alpha, dt, dx)
        u = fact.solve(d)
    decay = np.exp(-alpha * np.pi**2 * dt * 20)
    measured = u[0, n // 2] / np.sin(np.pi * 0.5)
    assert measured == pytest.approx(decay, rel=1e-3)
