"""Factorization reuse: Thomas and hybrid factor-once / solve-many."""

import numpy as np
import pytest

from repro.core.factorize import HybridFactorization, ThomasFactorization

from .conftest import make_batch, max_err, reference_solve


@pytest.mark.parametrize("m,n", [(1, 64), (4, 100), (16, 33)])
def test_thomas_factor_solve(m, n):
    a, b, c, d = make_batch(m, n, seed=m + n)
    fact = ThomasFactorization.factor(a, b, c)
    x = fact.solve(d)
    assert max_err(x, reference_solve(a, b, c, d)) < 1e-11


def test_thomas_factor_matches_direct():
    from repro.core.thomas import thomas_solve_batch

    a, b, c, d = make_batch(3, 50, seed=1)
    fact = ThomasFactorization.factor(a, b, c)
    assert np.allclose(fact.solve(d), thomas_solve_batch(a, b, c, d), atol=1e-13)


def test_thomas_factor_reuse_is_linear():
    a, b, c, d = make_batch(2, 40, seed=2)
    fact = ThomasFactorization.factor(a, b, c)
    x1 = fact.solve(d)
    x2 = fact.solve(3.0 * d)
    assert np.allclose(x2, 3.0 * x1, atol=1e-12)


def test_thomas_multi_rhs():
    m, n, r = 3, 32, 5
    a, b, c, _ = make_batch(m, n, seed=3)
    rng = np.random.default_rng(0)
    D = rng.standard_normal((m, n, r))
    fact = ThomasFactorization.factor(a, b, c)
    X = fact.solve(D)
    assert X.shape == (m, n, r)
    for j in range(r):
        assert max_err(X[:, :, j], reference_solve(a, b, c, D[:, :, j])) < 1e-11


@pytest.mark.parametrize("dtype", [np.float32, np.float64])
def test_thomas_multi_rhs_preserves_dtype(dtype):
    m, n, r = 4, 48, 3
    a, b, c, _ = make_batch(m, n, dtype=dtype, seed=30)
    D = np.random.default_rng(5).standard_normal((m, n, r)).astype(dtype)
    fact = ThomasFactorization.factor(a, b, c)
    X = fact.solve(D)
    assert X.dtype == dtype
    tol = 1e-4 if dtype == np.float32 else 1e-11
    for j in range(r):
        assert max_err(X[:, :, j], reference_solve(a, b, c, D[:, :, j])) < tol


def test_thomas_solve_accepts_f_ordered_and_strided_d():
    m, n = 6, 80
    a, b, c, d = make_batch(m, n, seed=31)
    fact = ThomasFactorization.factor(a, b, c)
    ref = fact.solve(d)
    assert np.array_equal(fact.solve(np.asfortranarray(d)), ref)
    wide = np.zeros((m, 2 * n))
    wide[:, ::2] = d
    strided = wide[:, ::2]
    assert strided.strides != d.strides  # genuinely non-contiguous
    assert np.array_equal(fact.solve(strided), ref)


def test_thomas_solve_scratch_and_out_reuse_is_clean():
    # caller-owned buffers reused across different right-hand sides
    # must not leak state between solves
    m, n = 5, 64
    a, b, c, d = make_batch(m, n, seed=32)
    d2 = np.random.default_rng(6).standard_normal((m, n))
    fact = ThomasFactorization.factor(a, b, c)
    scratch = np.empty_like(d)
    out = np.empty_like(d)
    x1 = fact.solve(d, out=out, scratch=scratch).copy()
    x2 = fact.solve(d2, out=out, scratch=scratch)
    assert x2 is out
    assert np.array_equal(x1, fact.solve(d))
    assert np.array_equal(x2, fact.solve(d2))


def test_thomas_factor_shape_check():
    a, b, c, _ = make_batch(2, 16, seed=4)
    fact = ThomasFactorization.factor(a, b, c)
    with pytest.raises(ValueError, match="leading shape"):
        fact.solve(np.zeros((2, 17)))


def test_thomas_factor_properties():
    a, b, c, _ = make_batch(5, 20, seed=5)
    fact = ThomasFactorization.factor(a, b, c)
    assert fact.m == 5 and fact.n == 20


# ---- hybrid factorization -----------------------------------------------------


@pytest.mark.parametrize("m,n,k", [(1, 128, 3), (4, 100, 2), (8, 257, 4), (2, 64, 0)])
def test_hybrid_factor_solve(m, n, k):
    a, b, c, d = make_batch(m, n, seed=m * n + k)
    fact = HybridFactorization.factor(a, b, c, k=k)
    x = fact.solve(d)
    assert max_err(x, reference_solve(a, b, c, d)) < 1e-10


def test_hybrid_factor_default_k_heuristic():
    a, b, c, d = make_batch(64, 4096, seed=6)
    fact = HybridFactorization.factor(a, b, c)
    assert fact.k == 6  # Table III for M = 64
    x = fact.solve(d)
    assert max_err(x, reference_solve(a, b, c, d)) < 1e-10


def test_hybrid_factor_matches_hybrid_solver():
    from repro.core.hybrid import HybridSolver

    a, b, c, d = make_batch(4, 200, seed=7)
    fact = HybridFactorization.factor(a, b, c, k=3)
    x1 = fact.solve(d)
    x2 = HybridSolver(k=3).solve_batch(a, b, c, d)
    assert np.allclose(x1, x2, atol=1e-11)


def test_hybrid_factor_reuse_many_rhs():
    """Time-stepping pattern: one factorization, many solves."""
    m, n = 8, 256
    a, b, c, _ = make_batch(m, n, seed=8)
    fact = HybridFactorization.factor(a, b, c, k=4)
    rng = np.random.default_rng(1)
    for _ in range(5):
        d = rng.standard_normal((m, n))
        x = fact.solve(d)
        assert max_err(x, reference_solve(a, b, c, d)) < 1e-10


def test_hybrid_factor_multi_rhs():
    m, n, r, k = 2, 96, 4, 3
    a, b, c, _ = make_batch(m, n, seed=9)
    rng = np.random.default_rng(2)
    D = rng.standard_normal((m, n, r))
    fact = HybridFactorization.factor(a, b, c, k=k)
    X = fact.solve(D)
    for j in range(r):
        assert max_err(X[:, :, j], reference_solve(a, b, c, D[:, :, j])) < 1e-10


@pytest.mark.parametrize("dtype", [np.float32, np.float64])
def test_hybrid_multi_rhs_preserves_dtype(dtype):
    m, n, r, k = 3, 96, 4, 3
    a, b, c, _ = make_batch(m, n, dtype=dtype, seed=33)
    D = np.random.default_rng(7).standard_normal((m, n, r)).astype(dtype)
    fact = HybridFactorization.factor(a, b, c, k=k)
    X = fact.solve(D)
    assert X.shape == (m, n, r) and X.dtype == dtype
    tol = 1e-3 if dtype == np.float32 else 1e-10
    for j in range(r):
        assert max_err(X[:, :, j], reference_solve(a, b, c, D[:, :, j])) < tol


def test_hybrid_solve_scratch_dict_reuse_is_clean():
    # the same scratch dict over many steps (the prepared-path pattern)
    # must give the same bits as fresh allocations — including the
    # regroup pad re-zeroing when n does not divide by 2^k
    m, n, k = 4, 100, 3  # 100 not divisible by 8 -> padded regroup
    a, b, c, d = make_batch(m, n, seed=34)
    d2 = np.random.default_rng(8).standard_normal((m, n))
    fact = HybridFactorization.factor(a, b, c, k=k)
    scratch: dict = {}
    x1 = fact.solve(d, scratch=scratch)
    x2 = fact.solve(d2, scratch=scratch)
    x3 = fact.solve(d, scratch=scratch)
    assert np.array_equal(x1, fact.solve(d))
    assert np.array_equal(x2, fact.solve(d2))
    assert np.array_equal(x1, x3)


def test_hybrid_solve_accepts_f_ordered_d():
    a, b, c, d = make_batch(4, 128, seed=35)
    fact = HybridFactorization.factor(a, b, c, k=3)
    assert np.array_equal(fact.solve(np.asfortranarray(d)), fact.solve(d))


def test_hybrid_solve_does_not_mutate_input():
    a, b, c, d = make_batch(4, 128, seed=36)
    fact = HybridFactorization.factor(a, b, c, k=3)
    d0 = d.copy()
    fact.solve(d)
    assert np.array_equal(d, d0)


def test_hybrid_factor_stores_k_levels():
    a, b, c, _ = make_batch(1, 128, seed=10)
    fact = HybridFactorization.factor(a, b, c, k=4)
    assert len(fact.level_factors) == 4
    for k1, k2 in fact.level_factors:
        assert k1.shape == (1, 128)


def test_hybrid_factor_uninitialized():
    fact = HybridFactorization(k=2)
    with pytest.raises(RuntimeError, match="factor"):
        fact.solve(np.zeros((1, 8)))


def test_cn_time_stepping_with_factorization():
    """Integration: Crank–Nicolson reuses one factorization per run."""
    from repro.workloads.pde import crank_nicolson_system

    m, n = 16, 128
    alpha, dt = 0.1, 1e-3
    dx = 1.0 / (n - 1)
    xg = np.linspace(0, 1, n)
    u = np.sin(np.pi * xg)[None, :] * np.ones((m, 1))
    a, b, c, d = crank_nicolson_system(u, alpha, dt, dx)
    fact = HybridFactorization.factor(a, b, c, k=3)
    for _ in range(20):
        _, _, _, d = crank_nicolson_system(u, alpha, dt, dx)
        u = fact.solve(d)
    decay = np.exp(-alpha * np.pi**2 * dt * 20)
    measured = u[0, n // 2] / np.sin(np.pi * 0.5)
    assert measured == pytest.approx(decay, rel=1e-3)
