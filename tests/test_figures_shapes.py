"""Figure reproduction: series structure and the paper's shape claims."""

import pytest

from repro.analysis.figures import (
    FIG12_SWEEPS,
    FIG13_SWEEPS,
    FIG14_CONFIGS,
    figure12_series,
    figure13_series,
    figure14_bars,
)
from repro.analysis.shapes import (
    crossover_index,
    is_linear_in,
    loglog_slope,
    max_speedup,
    relative_span,
)


# ---- shape helpers -----------------------------------------------------------


def test_loglog_slope_exact():
    xs = [1, 2, 4, 8]
    assert loglog_slope(xs, [3, 6, 12, 24]) == pytest.approx(1.0)
    assert loglog_slope(xs, [5, 5, 5, 5]) == pytest.approx(0.0)
    assert loglog_slope(xs, [1, 4, 16, 64]) == pytest.approx(2.0)


def test_loglog_slope_validation():
    with pytest.raises(ValueError):
        loglog_slope([1], [1])
    with pytest.raises(ValueError):
        loglog_slope([1, 1], [1, 2])


def test_is_linear_in():
    assert is_linear_in([1, 2, 4], [10, 20, 40])
    assert not is_linear_in([1, 2, 4], [10, 11, 12])


def test_crossover_index():
    rows = [{"a": 5, "b": 3}, {"a": 3, "b": 3.5}, {"a": 1, "b": 4}]
    assert crossover_index(rows, "a", "b") == 1
    assert crossover_index(rows, "b", "a") == 0
    assert crossover_index([{"a": 5, "b": 3}], "a", "b") is None


def test_relative_span():
    assert relative_span([2.0, 2.2, 2.1]) == pytest.approx(1.1)
    with pytest.raises(ValueError):
        relative_span([0.0, 1.0])


def test_max_speedup():
    rows = [{"x": 10, "y": 2}, {"x": 30, "y": 3}]
    assert max_speedup(rows, "x", "y") == 10.0
    with pytest.raises(ValueError):
        max_speedup([], "x", "y")


# ---- Fig. 12 claims ------------------------------------------------------------


@pytest.fixture(scope="module")
def fig12a():
    return figure12_series(512)


def test_fig12_cpu_curves_linear(fig12a):
    """'an obvious relation ... which is perfectly linear'."""
    ms = [r["M"] for r in fig12a]
    assert is_linear_in(ms, [r["mkl_seq_us"] for r in fig12a], tol=0.05)
    mt = [r["mkl_mt_us"] for r in fig12a]
    assert loglog_slope(ms, mt) > 0.8


def test_fig12_gpu_sublinear_then_linear(fig12a):
    """Sub-linear below saturation (M < 4096), linear above."""
    low = [r for r in fig12a if r["M"] <= 2048]
    high = [r for r in fig12a if r["M"] >= 4096]
    assert loglog_slope([r["M"] for r in low], [r["ours_us"] for r in low]) < 0.75
    assert is_linear_in([r["M"] for r in high], [r["ours_us"] for r in high], tol=0.1)


def test_fig12_flat_region(fig12a):
    """'a flat region can be found when M is between 512 and 4,096'."""
    flat = [r["ours_us"] for r in fig12a if 512 <= r["M"] <= 2048]
    assert relative_span(flat) < 2.0


def test_fig12_gpu_wins_everywhere_vs_seq(fig12a):
    assert crossover_index(fig12a, "ours_us", "mkl_seq_us") == 0


def test_fig12_headline_speedups(fig12a):
    """'up to 8.3x and 49x speedups' (±50% band)."""
    assert 24 < max_speedup(fig12a, "mkl_seq_us", "ours_us") < 74
    assert 4 < max_speedup(fig12a, "mkl_mt_us", "ours_us") < 13


def test_fig12_close_to_cpu_at_small_m(fig12a):
    """'our method shows close results compared to the CPU implementations
    when M is small' — within ~one order of the MT curve at M = 64."""
    first = fig12a[0]
    assert first["mkl_mt_us"] / first["ours_us"] < 10


def test_fig12_k_schedule(fig12a):
    """k follows Table III down the sweep."""
    ks = {r["M"]: r["k"] for r in fig12a}
    assert ks[64] == 6 and ks[512] == 5 and ks[1024] == 0


@pytest.mark.parametrize("n", list(FIG12_SWEEPS))
def test_fig12_all_panels_generate(n):
    rows = figure12_series(n)
    assert len(rows) == len(FIG12_SWEEPS[n])
    assert all(r["ours_us"] > 0 for r in rows)


def test_fig12_single_precision_headlines():
    rows = figure12_series(512, dtype_bytes=4)
    assert 41 < max_speedup(rows, "mkl_seq_us", "ours_us") < 124   # 82.5 ± 50%
    assert 6 < max_speedup(rows, "mkl_mt_us", "ours_us") < 20      # 12.9 ± 50%


# ---- Fig. 13 claims ------------------------------------------------------------


@pytest.mark.parametrize("m", list(FIG13_SWEEPS))
def test_fig13_panels_generate_and_scale(m):
    rows = figure13_series(m)
    assert len(rows) == len(FIG13_SWEEPS[m])
    ns = [r["N"] for r in rows]
    ours = [r["ours_ms"] for r in rows]
    # scalable in N: near-linear growth at fixed M
    assert 0.7 < loglog_slope(ns, ours) < 1.3


def test_fig13_m2048_pure_pthomas():
    rows = figure13_series(2048)
    assert all(r["k"] == 0 for r in rows)
    assert all(r["pcr_fraction"] == 0 for r in rows)


def test_fig13_pcr_share_nonzero_below_transition():
    for m in (256, 16, 1):
        rows = figure13_series(m)
        assert all(r["pcr_fraction"] > 0.1 for r in rows)


def test_fig13_single_system_speedup():
    """'consistently shows around 5.5x speedup' for M = 1."""
    rows = figure13_series(1)
    for r in rows:
        assert 2.5 < r["speedup_seq"] < 11


def test_fig13_gpu_beats_mt_at_large_m():
    rows = figure13_series(2048)
    assert all(r["speedup_mt"] > 1 for r in rows)


# ---- Fig. 14 claims ------------------------------------------------------------


def test_fig14_double_ours_wins_everywhere():
    rows = figure14_bars(8)
    assert len(rows) == len(FIG14_CONFIGS)
    for r in rows:
        assert r["ratio"] > 1.2, r["config"]


def test_fig14_ratio_band():
    """'2x to 10x speedup for most of the cases'."""
    rows = figure14_bars(8)
    assert sum(1 for r in rows if 2 <= r["ratio"] <= 12) >= 3


def test_fig14_single_precision_includes_reported():
    rows = figure14_bars(4)
    assert all("davidson_reported_ms" in r for r in rows)
    for r in rows:
        assert r["ratio"] > 1.0


def test_fig14_ratio_tracks_paper():
    """Model ratio within 2x of the paper's measured ratio per config."""
    for r in figure14_bars(8):
        assert 0.5 < r["ratio"] / r["paper_ratio"] < 2.0, r["config"]
