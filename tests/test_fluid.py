"""Fluid scalar-transport workload (the paper's refs [4][5] application)."""

import numpy as np
import pytest

from repro.core.solver import solve_batch
from repro.workloads.fluid import FluidSim, advect_semi_lagrangian, diffuse_adi


def _blob(ny, nx, cy, cx, r=4):
    q = np.zeros((ny, nx))
    jj, ii = np.meshgrid(np.arange(ny), np.arange(nx), indexing="ij")
    q[(jj - cy) ** 2 + (ii - cx) ** 2 <= r * r] = 1.0
    return q


# ---- advection ------------------------------------------------------------


def test_advection_zero_velocity_is_identity():
    q = _blob(32, 32, 16, 16)
    z = np.zeros_like(q)
    assert np.array_equal(advect_semi_lagrangian(q, z, z, 0.5), q)


def test_advection_uniform_translation():
    q = _blob(64, 64, 32, 20)
    u = np.full_like(q, 2.0)  # 2 cells/time to the right
    v = np.zeros_like(q)
    q1 = advect_semi_lagrangian(q, u, v, 1.0)
    # the blob centroid moved by ~2 cells in x
    total = q1.sum()
    cx0 = (q * np.arange(64)[None, :]).sum() / q.sum()
    cx1 = (q1 * np.arange(64)[None, :]).sum() / total
    assert cx1 - cx0 == pytest.approx(2.0, abs=0.05)


def test_advection_max_principle():
    rng = np.random.default_rng(0)
    q = rng.random((40, 40))
    u = rng.standard_normal((40, 40))
    v = rng.standard_normal((40, 40))
    q1 = advect_semi_lagrangian(q, u, v, 0.7)
    assert q1.max() <= q.max() + 1e-12
    assert q1.min() >= q.min() - 1e-12


def test_advection_shape_validation():
    with pytest.raises(ValueError):
        advect_semi_lagrangian(np.zeros((4, 4)), np.zeros((4, 5)), np.zeros((4, 4)), 0.1)


# ---- ADI diffusion -----------------------------------------------------------


def test_diffusion_conserves_total():
    q = _blob(48, 48, 24, 24)
    total0 = q.sum()
    for _ in range(10):
        q = diffuse_adi(q, beta=0.4)
    assert q.sum() == pytest.approx(total0, rel=1e-12)


def test_diffusion_spreads_and_flattens():
    q = _blob(48, 48, 24, 24, r=2)
    peak0 = q.max()
    q = diffuse_adi(q, beta=1.0)
    assert q.max() < peak0
    assert q.min() >= -1e-12


def test_diffusion_solver_injectable():
    from repro.core.thomas import thomas_solve_batch

    q = _blob(24, 24, 12, 12)
    q1 = diffuse_adi(q, 0.3, solver=solve_batch)
    q2 = diffuse_adi(q, 0.3, solver=lambda a, b, c, d: thomas_solve_batch(a, b, c, d))
    assert np.allclose(q1, q2, atol=1e-10)


# ---- the stepper ---------------------------------------------------------------


def test_fluidsim_vortex_rotates_blob():
    """After a quarter turn of solid-body rotation, the blob sits a
    quarter-circle away (diffusion kept tiny)."""
    ny = nx = 65
    omega = 2 * np.pi / 200  # rad per step
    u, v = FluidSim.vortex(ny, nx, strength=omega)
    sim = FluidSim(u=u, v=v, alpha=1e-6, dt=1.0)
    q = _blob(ny, nx, 32, 52, r=3)  # 20 cells right of centre
    q = sim.run(q, steps=50)  # quarter turn
    jj, ii = np.meshgrid(np.arange(ny), np.arange(nx), indexing="ij")
    cy = (q * jj).sum() / q.sum()
    cx = (q * ii).sum() / q.sum()
    # solid-body quarter turn of (32, 52) about (32, 32) -> (52, 32)
    assert cx == pytest.approx(32.0, abs=1.5)
    assert cy == pytest.approx(52.0, abs=1.5)
    assert sim.steps_taken == 50


def test_fluidsim_mass_bounded():
    ny = nx = 48
    u, v = FluidSim.vortex(ny, nx, strength=0.01)
    sim = FluidSim(u=u, v=v, alpha=1e-3, dt=1.0)
    q = _blob(ny, nx, 24, 30)
    total0 = q.sum()
    q = sim.run(q, steps=20)
    # semi-Lagrangian advection is not exactly conservative, but stays
    # within a few percent on a smooth vortex; diffusion is conservative
    assert q.sum() == pytest.approx(total0, rel=0.1)
    assert q.min() >= -1e-9


def test_fluidsim_validation():
    with pytest.raises(ValueError):
        FluidSim(u=np.zeros((4, 4)), v=np.zeros((5, 4)))
    with pytest.raises(ValueError):
        FluidSim(u=np.zeros((4, 4)), v=np.zeros((4, 4)), dt=0.0)


def test_fluidsim_beta():
    sim = FluidSim(u=np.zeros((4, 4)), v=np.zeros((4, 4)), alpha=0.2, dt=0.5, dx=2.0)
    assert sim.beta == pytest.approx(0.2 * 0.5 / (2 * 4.0))
