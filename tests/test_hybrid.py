"""HybridSolver: correctness across plans, fusion equivalence, reporting."""

import numpy as np
import pytest

from repro.core.hybrid import HybridReport, HybridSolver, _FusedPThomas
from repro.core.transition import TransitionHeuristic

from .conftest import make_batch, max_err, reference_solve


@pytest.mark.parametrize("m,n", [(1, 1024), (4, 511), (17, 128), (1025, 33), (2, 4)])
@pytest.mark.parametrize("k", [None, 0, 1, 2, 4])
def test_matches_reference(m, n, k):
    a, b, c, d = make_batch(m, n, seed=(m * 7 + n) % 1000)
    x = HybridSolver(k=k).solve_batch(a, b, c, d)
    assert max_err(x, reference_solve(a, b, c, d)) < 1e-9


@pytest.mark.parametrize("m,n,k", [(1, 512, 3), (3, 200, 4), (8, 77, 2)])
def test_fused_equals_unfused_exactly(m, n, k):
    a, b, c, d = make_batch(m, n, seed=k)
    x1 = HybridSolver(k=k, fuse=False).solve_batch(a, b, c, d)
    x2 = HybridSolver(k=k, fuse=True).solve_batch(a, b, c, d)
    assert np.array_equal(x1, x2)


@pytest.mark.parametrize("n_windows", [1, 2, 4])
def test_windows_do_not_change_answer(n_windows):
    a, b, c, d = make_batch(2, 300, seed=n_windows)
    x1 = HybridSolver(k=3, n_windows=1).solve_batch(a, b, c, d)
    xw = HybridSolver(k=3, n_windows=n_windows).solve_batch(a, b, c, d)
    assert np.array_equal(x1, xw)


def test_fused_with_windows():
    a, b, c, d = make_batch(1, 400, seed=5)
    x1 = HybridSolver(k=3).solve_batch(a, b, c, d)
    x2 = HybridSolver(k=3, fuse=True, n_windows=3).solve_batch(a, b, c, d)
    assert max_err(x2, x1) < 1e-13


def test_report_contents():
    a, b, c, d = make_batch(64, 512, seed=1)
    solver = HybridSolver()
    solver.solve_batch(a, b, c, d)
    rep = solver.last_report
    assert isinstance(rep, HybridReport)
    assert rep.m == 64 and rep.n == 512
    assert rep.k == 6  # Table III for M = 64
    assert rep.k_source == "heuristic"
    assert rep.subsystems == 64 * 64
    assert rep.tiling.rows_loaded == 64 * 512
    assert rep.tiling.rows_loaded_redundant == 0
    assert rep.pcr_eliminations >= rep.k * rep.n * rep.m


def test_report_thomas_eliminations_k0():
    a, b, c, d = make_batch(2048, 64, seed=2)
    solver = HybridSolver()
    solver.solve_batch(a, b, c, d)
    rep = solver.last_report
    assert rep.k == 0
    assert rep.thomas_eliminations == 2048 * (2 * 64 - 1)


def test_report_thomas_eliminations_k_positive():
    a, b, c, d = make_batch(4, 40, seed=3)
    solver = HybridSolver(k=2)
    solver.solve_batch(a, b, c, d)
    rep = solver.last_report
    # 4 subsystems of length 10: each costs 2*10 - 1 = 19
    assert rep.thomas_eliminations == 4 * 4 * 19


def test_choose_k_sources():
    s = HybridSolver(k=5)
    assert s.choose_k(100, 1 << 14) == (5, "fixed")
    s = HybridSolver(parallelism=23040)
    k, src = s.choose_k(1, 1 << 14)
    assert src == "analytic"
    assert k > 0
    s = HybridSolver()
    assert s.choose_k(2000, 1 << 14) == (0, "heuristic")


def test_fixed_k_clamped_to_n():
    a, b, c, d = make_batch(1, 8, seed=4)
    solver = HybridSolver(k=8)  # absurd for n = 8
    x = solver.solve_batch(a, b, c, d)
    assert solver.last_report.k <= 2
    assert max_err(x, reference_solve(a, b, c, d)) < 1e-10


def test_custom_heuristic_used():
    h = TransitionHeuristic(thresholds=(), ks=(3,), name="always3")
    a, b, c, d = make_batch(5000, 64, seed=5)
    solver = HybridSolver(heuristic=h)
    solver.solve_batch(a, b, c, d)
    assert solver.last_report.k == 3


def test_solve_single_system():
    a, b, c, d = make_batch(1, 256, seed=6)
    x = HybridSolver().solve(a[0], b[0], c[0], d[0])
    assert x.shape == (256,)
    assert max_err(x[None], reference_solve(a, b, c, d)) < 1e-10


def test_float32_end_to_end():
    a, b, c, d = make_batch(8, 128, dtype=np.float32, seed=7)
    x = HybridSolver(k=3).solve_batch(a, b, c, d)
    assert x.dtype == np.float32
    assert max_err(x, reference_solve(a, b, c, d)) < 1e-3


# ---- the fused consumer in isolation -------------------------------------


def test_fused_consumer_rejects_out_of_order():
    f = _FusedPThomas(1, 16, 2, np.float64)
    quad = tuple(np.ones((1, 4)) for _ in range(4))
    f.consume(0, 4, quad)
    with pytest.raises(RuntimeError, match="out of order"):
        f.consume(8, 12, quad)


def test_fused_consumer_rejects_incomplete_backward():
    f = _FusedPThomas(1, 16, 2, np.float64)
    quad = tuple(np.ones((1, 4)) for _ in range(4))
    f.consume(0, 4, quad)
    with pytest.raises(RuntimeError, match="incomplete"):
        f.backward()
