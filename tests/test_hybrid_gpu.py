"""GpuHybridSolver: planning, prediction, numerics + report coupling."""

import numpy as np
import pytest

from repro.gpusim.device import GTX480, TESLA_C2050
from repro.kernels.hybrid_gpu import GpuHybridSolver, GpuSolveReport

from .conftest import make_batch, max_err, reference_solve


def test_numeric_solution_correct():
    a, b, c, d = make_batch(16, 512, seed=1)
    gpu = GpuHybridSolver()
    x = gpu.solve_batch(a, b, c, d)
    assert max_err(x, reference_solve(a, b, c, d)) < 1e-9
    assert gpu.last_report is not None


def test_plan_follows_table3():
    gpu = GpuHybridSolver()
    assert gpu.plan(2048, 512)[0] == 0
    assert gpu.plan(64, 4096)[0] == 6
    assert gpu.plan(1, 1 << 20)[0] == 8


def test_plan_windows_fill_device_for_small_m():
    gpu = GpuHybridSolver()
    k, w = gpu.plan(1, 1 << 20)
    assert w > 1
    assert w <= (1 << 20) // (4 * (1 << k))
    # large M needs no splitting
    assert gpu.plan(512, 4096)[1] == 1


def test_plan_windows_zero_for_k0():
    gpu = GpuHybridSolver()
    assert gpu.plan_windows(4096, 512, 0) == 1


def test_plan_windows_capped_by_subtiles():
    gpu = GpuHybridSolver(target_blocks_per_sm=1000)
    k, w = gpu.plan(1, 8192)
    # never so many windows that a window advances < 4 sub-tiles
    assert w <= 8192 // (4 * (1 << k))


def test_predict_report_structure():
    gpu = GpuHybridSolver()
    rep = gpu.predict(256, 16384)
    assert isinstance(rep, GpuSolveReport)
    assert rep.k == 6
    assert len(rep.stages) == 2  # PCR + p-Thomas
    assert rep.total_s > 0
    assert rep.total_us == pytest.approx(rep.total_s * 1e6)
    assert 0 < rep.pcr_fraction < 1
    counters, time = rep.stage("PCR")
    assert counters.eliminations > 0


def test_predict_k0_single_stage():
    rep = GpuHybridSolver().predict(4096, 512)
    assert rep.k == 0
    assert len(rep.stages) == 1
    assert rep.pcr_fraction == 0.0


def test_predict_fused_single_stage():
    rep = GpuHybridSolver(fuse=True).predict(64, 4096)
    assert rep.fused
    assert len(rep.stages) == 1
    assert "fused" in rep.stages[0][0]


def test_stage_lookup_raises():
    rep = GpuHybridSolver().predict(4096, 512)
    with pytest.raises(KeyError):
        rep.stage("PCR")


def test_float32_faster_than_float64():
    gpu = GpuHybridSolver()
    t64 = gpu.predict(4096, 2048, 8).total_s
    t32 = gpu.predict(4096, 2048, 4).total_s
    assert t32 < t64


def test_different_devices_change_prediction():
    t480 = GpuHybridSolver(device=GTX480).predict(2048, 2048).total_s
    t2050 = GpuHybridSolver(device=TESLA_C2050).predict(2048, 2048).total_s
    assert t480 != t2050


def test_solve_batch_fills_prediction():
    a, b, c, d = make_batch(8, 256, seed=2)
    gpu = GpuHybridSolver()
    gpu.solve_batch(a, b, c, d)
    assert gpu.last_report.m == 8
    assert gpu.last_report.n == 256


def test_solve_single_wrapper():
    a, b, c, d = make_batch(1, 300, seed=3)
    gpu = GpuHybridSolver()
    x = gpu.solve(a[0], b[0], c[0], d[0])
    assert max_err(x[None], reference_solve(a, b, c, d)) < 1e-9


def test_numerics_identical_to_core_hybrid():
    """The GPU wrapper must not change the answer, only add the model."""
    from repro.core.hybrid import HybridSolver

    a, b, c, d = make_batch(4, 600, seed=4)
    gpu = GpuHybridSolver()
    k, w = gpu.plan(4, 600)
    x1 = gpu.solve_batch(a, b, c, d)
    x2 = HybridSolver(k=k, n_windows=w).solve_batch(a, b, c, d)
    assert np.array_equal(x1, x2)


def test_time_grows_with_m_at_saturation():
    gpu = GpuHybridSolver()
    t1 = gpu.predict(4096, 512).total_s
    t2 = gpu.predict(8192, 512).total_s
    assert t2 > 1.5 * t1
