"""Kernel ledgers: traffic relations the paper's arguments rest on."""

import pytest

from repro.core.cost_model import f_redundant_loads
from repro.core.layout import Layout
from repro.gpusim.device import GTX480
from repro.gpusim.timing import GpuTimingModel
from repro.kernels.cr_kernel import cr_counters
from repro.kernels.fused_kernel import fused_hybrid_counters
from repro.kernels.pcr_kernel import inshared_pcr_counters, max_inshared_rows
from repro.kernels.pthomas_kernel import pthomas_counters
from repro.kernels.tiled_pcr_kernel import tiled_pcr_counters


# ---- p-Thomas ---------------------------------------------------------------


def test_pthomas_eliminations():
    k = pthomas_counters(100, 64, 8)
    assert k.eliminations == 100 * (2 * 64 - 1)
    assert k.dependent_steps == 2 * 64 - 1


def test_pthomas_traffic_values_per_row():
    # 4 reads + 2 writes + 2 reads + 1 write = 9 values per row
    k = pthomas_counters(64, 32, 8)
    assert k.traffic.useful_bytes == 9 * 64 * 32 * 8


def test_pthomas_fused_input_saves_diagonal_loads():
    full = pthomas_counters(64, 32, 8)
    fused = pthomas_counters(64, 32, 8, fused_input=True)
    saved = full.traffic.load_bytes - fused.traffic.load_bytes
    assert saved == 4 * 64 * 32 * 8


def test_pthomas_contiguous_layout_blows_up_transactions():
    inter = pthomas_counters(256, 512, 8, layout=Layout.INTERLEAVED)
    contig = pthomas_counters(256, 512, 8, layout=Layout.CONTIGUOUS)
    assert contig.traffic.useful_bytes == inter.traffic.useful_bytes
    assert contig.traffic.bus_bytes > 10 * inter.traffic.bus_bytes


def test_pthomas_interleaved_fully_coalesced():
    k = pthomas_counters(256, 128, 8)
    assert k.traffic.coalescing_efficiency == pytest.approx(1.0)


def test_pthomas_partial_warp_counted():
    k = pthomas_counters(33, 16, 8)  # one full warp + 1 lane
    assert k.traffic.load_transactions > 0


def test_pthomas_validation():
    with pytest.raises(ValueError):
        pthomas_counters(0, 16, 8)
    with pytest.raises(ValueError):
        pthomas_counters(16, 16, 2)


# ---- tiled PCR ----------------------------------------------------------------


def test_tiled_pcr_single_window_traffic():
    m, n, k = 4, 1024, 5
    c = tiled_pcr_counters(m, n, k, 8)
    assert c.traffic.load_bytes == 4 * m * n * 8
    assert c.traffic.store_bytes == 4 * m * n * 8


def test_tiled_pcr_window_redundancy():
    m, n, k, w = 1, 4096, 6, 4
    base = tiled_pcr_counters(m, n, k, 8, n_windows=1)
    multi = tiled_pcr_counters(m, n, k, 8, n_windows=w)
    extra = multi.traffic.load_bytes - base.traffic.load_bytes
    assert extra == 4 * (w - 1) * 2 * f_redundant_loads(k) * 8


def test_tiled_pcr_fused_output_saves_stores():
    c1 = tiled_pcr_counters(2, 512, 4, 8)
    c2 = tiled_pcr_counters(2, 512, 4, 8, fused_output=True)
    assert c2.traffic.store_bytes == 0
    assert c1.traffic.store_bytes > 0


def test_tiled_pcr_smem_footprint_matches_window():
    from repro.core.window import BufferedSlidingWindow

    c = tiled_pcr_counters(2, 512, 5, 8)
    assert c.smem_per_block == BufferedSlidingWindow(k=5, dtype_bytes=8).smem_bytes()


def test_tiled_pcr_multiplexed_windows_raise_footprint():
    c1 = tiled_pcr_counters(2, 512, 4, 8, windows_per_block=1)
    c2 = tiled_pcr_counters(2, 512, 4, 8, windows_per_block=2)
    assert c2.smem_per_block == 2 * c1.smem_per_block
    assert c2.threads_per_block == 2 * c1.threads_per_block


def test_tiled_pcr_rejects_k0():
    with pytest.raises(ValueError):
        tiled_pcr_counters(1, 64, 0, 8)


def test_tiled_pcr_barriers_scale_with_rounds():
    c1 = tiled_pcr_counters(1, 1024, 4, 8)
    c2 = tiled_pcr_counters(1, 2048, 4, 8)
    assert c2.barriers > c1.barriers


# ---- fused hybrid ----------------------------------------------------------------


def test_fusion_saves_global_traffic():
    """Section III-C: the reduced system's store + reload disappear."""
    m, n, k = 8, 2048, 5
    pcr = tiled_pcr_counters(m, n, k, 8)
    g = 1 << k
    thom = pthomas_counters(m * g, -(-n // g), 8)
    unfused_bytes = pcr.traffic.useful_bytes + thom.traffic.useful_bytes
    fused = fused_hybrid_counters(m, n, k, 8)
    assert fused.traffic.useful_bytes < unfused_bytes
    saved = unfused_bytes - fused.traffic.useful_bytes
    assert saved == pytest.approx(8 * m * g * (-(-n // g)) * 8, rel=0.01)


def test_fusion_single_launch():
    fused = fused_hybrid_counters(4, 1024, 4, 8)
    assert fused.launches == 1


def test_fusion_binds_block_shape_to_pcr():
    fused = fused_hybrid_counters(4, 1024, 4, 8)
    assert fused.threads_per_block == 16  # 2^4
    assert fused.smem_per_block > 0


def test_fusion_occupancy_penalty_visible():
    """The paper's warning: fusion can lower the back-end's parallelism —
    the fused kernel inherits the PCR stage's narrow, shared-memory-heavy
    blocks, so fewer warps are resident per SM than a standalone p-Thomas
    kernel would keep."""
    from repro.gpusim.occupancy import occupancy

    m, n, k = 4096, 2048, 5
    fused = fused_hybrid_counters(m, n, k, 8)
    thom = pthomas_counters(m * (1 << k), -(-n // (1 << k)), 8)
    occ_fused = occupancy(GTX480, fused.threads_per_block, fused.smem_per_block)
    occ_thom = occupancy(GTX480, thom.threads_per_block, thom.smem_per_block)
    assert occ_fused.warps_per_sm < occ_thom.warps_per_sm


def test_fusion_rejects_k0():
    with pytest.raises(ValueError):
        fused_hybrid_counters(1, 64, 0, 8)


# ---- in-shared-memory PCR and CR ---------------------------------------------------


def test_inshared_capacity_fp64_vs_fp32():
    assert max_inshared_rows(GTX480, 8) == 1536
    assert max_inshared_rows(GTX480, 4) == 3072


def test_inshared_pcr_rejects_oversized():
    with pytest.raises(ValueError, match="capacity"):
        inshared_pcr_counters(1, 2048, 8)


def test_inshared_pcr_whole_block_smem():
    c = inshared_pcr_counters(4, 1024, 8)
    assert c.smem_per_block == 4 * 1024 * 8


def test_cr_naive_has_more_smem_cycles_than_conflict_free():
    naive = cr_counters(16, 1024, 8, conflict_free=False)
    fixed = cr_counters(16, 1024, 8, conflict_free=True)
    assert naive.eliminations == fixed.eliminations
    assert naive.smem_cycles > 3 * fixed.smem_cycles


def test_cr_oversized_rejected():
    with pytest.raises(ValueError, match="capacity"):
        cr_counters(1, 4096, 8)


def test_cr_work_is_order_n():
    c = cr_counters(1, 1024, 8)
    # forward+backward touch ~2n rows total
    assert c.eliminations < 5 * 1024


def test_timing_model_prices_all_kernels():
    """Every ledger must be priceable without error."""
    model = GpuTimingModel(GTX480)
    for counters in (
        pthomas_counters(256, 64, 8),
        tiled_pcr_counters(4, 512, 4, 8),
        fused_hybrid_counters(4, 512, 4, 8),
        inshared_pcr_counters(8, 512, 8),
        cr_counters(8, 512, 8),
    ):
        st = model.time(counters, 8)
        assert st.total_s > 0


# --------------------------------------- RHS-only kernel footprints


def test_rhs_footprint_is_dtype_aware():
    from repro.kernels.rhs_kernel import rhs_kernel_footprint

    regs64, smem64 = rhs_kernel_footprint(4, 8)
    regs32, smem32 = rhs_kernel_footprint(4, 4)
    # fp64 live values occupy register pairs; fp32 a single word each
    assert regs64 - regs32 == 4
    assert smem64 == smem32 == 0
    with pytest.raises(ValueError, match="live_values"):
        rhs_kernel_footprint(0, 8)
    with pytest.raises(ValueError, match="dtype_bytes"):
        rhs_kernel_footprint(4, 2)


def test_rhs_ledgers_drop_the_generic_register_estimate():
    from repro.kernels.rhs_kernel import (
        cyclic_correction_counters,
        rhs_only_counters,
    )

    # the unprepared stage ledgers carry a flat 20-register estimate
    # sized for full elimination; every RHS-only kernel keeps fewer
    # values live and must report a tighter footprint
    generic = pthomas_counters(256, 64, 8).regs_per_thread
    assert generic == 20
    stages = rhs_only_counters(256, 512, 3, 8) + cyclic_correction_counters(
        256, 512, 8
    )
    for counters in stages:
        assert counters.regs_per_thread < generic, counters.name
        assert counters.smem_per_block == 0
    # fp32 footprints are tighter still
    for c64, c32 in zip(
        rhs_only_counters(256, 512, 3, 8), rhs_only_counters(256, 512, 3, 4)
    ):
        assert c32.regs_per_thread < c64.regs_per_thread


def test_rhs_footprint_raises_occupancy_over_generic():
    from repro.gpusim.occupancy import occupancy
    from repro.kernels.rhs_kernel import rhs_pthomas_counters

    c = rhs_pthomas_counters(4096, 64, 8)
    prepared = occupancy(
        GTX480, c.threads_per_block, c.smem_per_block, c.regs_per_thread
    )
    generic = occupancy(GTX480, c.threads_per_block, 0, 20)
    # fewer live registers → at least as many resident warps per SM
    assert prepared.warps_per_sm >= generic.warps_per_sm


# ---- banded (penta / block-Thomas) ------------------------------------------


def test_penta_prepared_cheaper_than_cold():
    from repro.kernels.banded_kernel import penta_sweep_counters

    cold = penta_sweep_counters(256, 512, 8)
    prep = penta_sweep_counters(256, 512, 8, prepared=True)
    assert prep.flops < cold.flops
    assert prep.traffic.load_bytes < cold.traffic.load_bytes
    assert prep.traffic.store_bytes < cold.traffic.store_bytes
    assert prep.regs_per_thread < cold.regs_per_thread
    # both walk the same 2N-1 dependent chain with one thread/system
    assert prep.dependent_steps == cold.dependent_steps == 2 * 512 - 1
    assert prep.threads == cold.threads == 256


def test_block_counters_scale_cubically_with_block_size():
    from repro.kernels.banded_kernel import block_sweep_counters

    c2 = block_sweep_counters(64, 128, 2, 8)
    c4 = block_sweep_counters(64, 128, 4, 8)
    # the B^3 pivot work dominates: doubling B must grow flops
    # super-quadratically
    assert c4.flops > 4 * c2.flops
    assert c4.threads == 2 * c2.threads  # M*B lanes
    assert block_sweep_counters(64, 128, 4, 8, prepared=True).flops < c4.flops


def test_banded_counters_dispatch_and_pricing():
    from repro.kernels.banded_kernel import banded_counters

    (penta,) = banded_counters("pentadiagonal", 64, 256, 8)
    assert "penta" in penta.name
    (blk,) = banded_counters("block", 64, 256, 8, block_size=3)
    assert "block3" in blk.name
    with pytest.raises(ValueError, match="no banded ledger"):
        banded_counters("heptadiagonal", 64, 256, 8)
    # the ledgers price through the same timing model as every kernel
    model = GpuTimingModel(GTX480)
    assert model.time(penta, 8).total_s > 0.0
    assert model.time(blk, 8).total_s > 0.0
