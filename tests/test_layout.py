"""Memory-layout transforms (interleave/deinterleave)."""

import numpy as np
import pytest

from repro.core.layout import Layout, deinterleave, interleave, interleave_batch


def test_interleave_order():
    arr = np.array([[0.0, 1.0, 2.0], [10.0, 11.0, 12.0]])  # (G=2, L=3)
    flat = interleave(arr)
    assert np.array_equal(flat, [0.0, 10.0, 1.0, 11.0, 2.0, 12.0])


def test_roundtrip():
    rng = np.random.default_rng(0)
    arr = rng.standard_normal((8, 13))
    assert np.array_equal(deinterleave(interleave(arr), 8), arr)


def test_roundtrip_other_direction():
    rng = np.random.default_rng(1)
    flat = rng.standard_normal(60)
    assert np.array_equal(interleave(deinterleave(flat, 5)), flat)


def test_interleave_batch():
    arr = np.arange(12.0).reshape(2, 2, 3)  # (M, G, L)
    out = interleave_batch(arr)
    assert out.shape == (2, 6)
    assert np.array_equal(out[0], [0.0, 3.0, 1.0, 4.0, 2.0, 5.0])


def test_interleave_rejects_bad_ndim():
    with pytest.raises(ValueError):
        interleave(np.zeros(5))
    with pytest.raises(ValueError):
        deinterleave(np.zeros((2, 3)), 2)
    with pytest.raises(ValueError):
        interleave_batch(np.zeros((2, 3)))


def test_deinterleave_rejects_indivisible():
    with pytest.raises(ValueError, match="divisible"):
        deinterleave(np.zeros(7), 2)


def test_layout_enum_values():
    assert Layout.CONTIGUOUS.value == "contiguous"
    assert Layout.INTERLEAVED.value == "interleaved"


def test_outputs_contiguous():
    arr = np.random.default_rng(2).standard_normal((4, 6))
    assert interleave(arr).flags["C_CONTIGUOUS"]
    assert deinterleave(interleave(arr), 4).flags["C_CONTIGUOUS"]
