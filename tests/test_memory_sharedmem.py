"""Coalescing (global memory) and bank-conflict (shared memory) models."""

import numpy as np
import pytest

from repro.gpusim.memory import (
    SEGMENT_BYTES,
    MemoryTraffic,
    transactions_for_warp,
    warp_transactions_strided,
)
from repro.gpusim.sharedmem import (
    N_BANKS,
    bank_conflict_degree,
    smem_access_cycles,
)


# ---- coalescing ------------------------------------------------------------


def test_unit_stride_float32_one_transaction():
    assert warp_transactions_strided(32, 1, 4) == 1  # 32 x 4 B = 128 B


def test_unit_stride_float64_two_transactions():
    assert warp_transactions_strided(32, 1, 8) == 2  # 32 x 8 B = 256 B


def test_stride_two_doubles_traffic():
    assert warp_transactions_strided(32, 2, 4) == 2


def test_large_stride_fully_uncoalesced():
    assert warp_transactions_strided(32, 32, 4) == 32
    assert warp_transactions_strided(32, 1000, 8) == 32


def test_misaligned_base_adds_transaction():
    aligned = warp_transactions_strided(32, 1, 4, base_offset_bytes=0)
    misaligned = warp_transactions_strided(32, 1, 4, base_offset_bytes=4)
    assert misaligned == aligned + 1


def test_partial_warp():
    assert warp_transactions_strided(32, 1, 4, active_lanes=8) == 1
    assert warp_transactions_strided(32, 1000, 4, active_lanes=8) == 8
    assert warp_transactions_strided(32, 1, 4, active_lanes=0) == 0


def test_explicit_addresses():
    # all lanes in one segment
    assert transactions_for_warp(np.arange(32) * 4) == 1
    # two segments
    assert transactions_for_warp([0, SEGMENT_BYTES]) == 2
    # duplicates collapse (broadcast)
    assert transactions_for_warp([64] * 32) == 1
    assert transactions_for_warp([]) == 0


def test_explicit_addresses_reject_negative():
    with pytest.raises(ValueError):
        transactions_for_warp([-4])


def test_traffic_ledger_accounting():
    t = MemoryTraffic()
    t.add_load(useful_bytes=256, transactions=2)
    t.add_store(useful_bytes=128, transactions=4)
    assert t.useful_bytes == 384
    assert t.bus_bytes == 6 * SEGMENT_BYTES
    assert t.coalescing_efficiency == pytest.approx(384 / 768)


def test_traffic_merge():
    t1 = MemoryTraffic(load_bytes=10, load_transactions=1)
    t2 = MemoryTraffic(store_bytes=20, store_transactions=2)
    t1.merge(t2)
    assert t1.useful_bytes == 30
    assert t1.load_transactions == 1
    assert t1.store_transactions == 2


def test_empty_traffic_efficiency_is_one():
    assert MemoryTraffic().coalescing_efficiency == 1.0


def test_interleaved_vs_contiguous_pthomas_pattern():
    """The Section III-B claim in transaction counts: interleaved layout
    (stride 1 across lanes) vs contiguous (stride N) for p-Thomas."""
    n = 512
    interleaved = warp_transactions_strided(32, 1, 8)
    contiguous = warp_transactions_strided(32, n, 8)
    assert contiguous / interleaved == 16  # 32 tx vs 2 tx


# ---- shared memory banks ----------------------------------------------------


@pytest.mark.parametrize("stride,degree", [
    (1, 1), (2, 2), (3, 1), (4, 4), (5, 1), (8, 8), (16, 16), (32, 32),
    (33, 1), (64, 32), (0, 1),
])
def test_bank_conflict_degrees(stride, degree):
    assert bank_conflict_degree(stride) == degree


def test_bank_conflict_gcd_property():
    from math import gcd

    for stride in range(1, 100):
        assert bank_conflict_degree(stride) == gcd(stride, N_BANKS)


def test_bank_conflict_rejects_negative():
    with pytest.raises(ValueError):
        bank_conflict_degree(-1)


def test_smem_cycles_fp32_unit():
    assert smem_access_cycles(1, elem_words=1) == 1


def test_smem_cycles_fp64_unit():
    # doubles: two 32-bit phases at word-stride 2 -> degree 2 each
    assert smem_access_cycles(1, elem_words=2) == 2 * 2


def test_smem_cycles_cr_naive_stride():
    """CR's power-of-two lane strides serialize badly — the motivation
    for the conflict-free layout."""
    naive = smem_access_cycles(16, elem_words=1)
    fixed = smem_access_cycles(1, elem_words=1)
    assert naive == 16
    assert fixed == 1


def test_smem_cycles_rejects_bad_words():
    with pytest.raises(ValueError):
        smem_access_cycles(1, elem_words=3)
