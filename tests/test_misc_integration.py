"""Small integration seams: __main__, fp32 API paths, cross-module glue."""

import subprocess
import sys

import numpy as np
import pytest

from .conftest import make_batch, make_system, max_err, reference_solve


def test_python_dash_m_repro():
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "tables", "--table", "3"],
        capture_output=True, text=True, timeout=120,
    )
    assert proc.returncode == 0
    assert "256" in proc.stdout  # the k=8 tile size


def test_gtsv_float32():
    from repro.api import gtsv

    a, b, c, d = make_system(32, dtype=np.float32, seed=1)
    x = gtsv(a[1:], b, c[:-1], d)
    assert x.dtype == np.float32
    assert max_err(x[None], reference_solve(a, b, c, d)) < 1e-3


def test_periodic_float32():
    from repro.core.periodic import solve_periodic

    rng = np.random.default_rng(2)
    n = 24
    a = rng.standard_normal(n).astype(np.float32)
    c = rng.standard_normal(n).astype(np.float32)
    b = (4 + np.abs(a) + np.abs(c)).astype(np.float32)
    d = rng.standard_normal(n).astype(np.float32)
    x = solve_periodic(a, b, c, d)
    A = np.diag(b) + np.diag(a[1:], -1) + np.diag(c[:-1], 1)
    A[0, -1] = a[0]
    A[-1, 0] = c[-1]
    assert np.allclose(A @ x, d, atol=1e-3)


def test_factorization_float32():
    from repro.core.factorize import ThomasFactorization

    a, b, c, d = make_batch(2, 40, dtype=np.float32, seed=3)
    fact = ThomasFactorization.factor(a, b, c)
    x = fact.solve(d)
    assert x.dtype == np.float32
    assert max_err(x, reference_solve(a, b, c, d)) < 1e-3


def test_streaming_pipeline_float32():
    from repro.core.streaming import StreamingPipeline, pcr_levels
    from repro.core.pcr import pcr_sweep

    a, b, c, d = make_batch(1, 64, dtype=np.float32, seed=4)
    levels, fill = pcr_levels(2)
    got = StreamingPipeline(levels, fill, chunk=8).run((a, b, c, d))
    ref = pcr_sweep(a, b, c, d, 2)
    for g, r in zip(got, ref):
        assert g.dtype == np.float32
        assert np.allclose(g, r, atol=1e-5)


def test_fluid_with_gpu_solver_backend():
    """The fluid workload accepts the simulated-GPU solver as backend."""
    from repro.kernels.hybrid_gpu import GpuHybridSolver
    from repro.workloads.fluid import diffuse_adi

    gpu = GpuHybridSolver()
    rng = np.random.default_rng(5)
    q = rng.random((32, 32))
    q1 = diffuse_adi(q, 0.3, solver=gpu.solve_batch)
    q2 = diffuse_adi(q, 0.3)
    assert np.allclose(q1, q2, atol=1e-10)
    assert gpu.last_report is not None


def test_hybrid_accepts_fortran_order_inputs():
    a, b, c, d = make_batch(4, 64, seed=6)
    af, bf, cf, df = (np.asfortranarray(v) for v in (a, b, c, d))
    import repro

    x1 = repro.solve_batch(a, b, c, d)
    x2 = repro.solve_batch(af, bf, cf, df)
    assert np.array_equal(x1, x2)


def test_hybrid_accepts_views():
    a, b, c, d = make_batch(8, 128, seed=7)
    sl = (slice(2, 6), slice(16, 112))
    import repro

    x = repro.solve_batch(a[sl], b[sl], c[sl], d[sl])
    # views include nonzero pads; the API zeroes them defensively
    aa = a[sl].copy()
    aa[:, 0] = 0.0
    cc = c[sl].copy()
    cc[:, -1] = 0.0
    assert max_err(x, reference_solve(aa, b[sl], cc, d[sl])) < 1e-10


def test_version_consistent():
    import tomllib
    from pathlib import Path

    import repro

    pyproject = Path(__file__).resolve().parent.parent / "pyproject.toml"
    with pyproject.open("rb") as fh:
        meta = tomllib.load(fh)
    assert repro.__version__ == meta["project"]["version"]
