"""Model extensions: lane fill, shared-memory k cap, device planning."""

import pytest

from repro.core.window import BufferedSlidingWindow, max_k_for_shared_memory
from repro.gpusim.counters import KernelCounters
from repro.gpusim.device import GTX480
from repro.gpusim.memory import MemoryTraffic
from repro.gpusim.timing import GpuTimingModel
from repro.kernels.hybrid_gpu import GpuHybridSolver


# ---- lane fill (sub-warp blocks) ------------------------------------------


def _mem_kernel(tpb, threads=1 << 16):
    t = MemoryTraffic()
    t.add_load(1 << 28, (1 << 28) // 128)
    return KernelCounters(
        name="m", traffic=t, threads=threads, threads_per_block=tpb
    )


def test_subwarp_blocks_pay_bandwidth_penalty():
    """2^k-thread blocks with k < 5 fill only part of each warp —
    the concrete cost of binding a kernel to narrow PCR blocks."""
    model = GpuTimingModel(GTX480)
    t8 = model.time(_mem_kernel(8), 8).memory_s
    t32 = model.time(_mem_kernel(32), 8).memory_s
    assert t8 > 2 * t32


def test_full_warp_blocks_no_lane_penalty():
    """Full-warp blocks pay no lane-fill penalty (64 vs 128 equal; 32 is
    slower only through the blocks-per-SM occupancy limit)."""
    model = GpuTimingModel(GTX480)
    t32 = model.time(_mem_kernel(32, threads=1 << 22), 8).memory_s
    t64 = model.time(_mem_kernel(64, threads=1 << 22), 8).memory_s
    t128 = model.time(_mem_kernel(128, threads=1 << 22), 8).memory_s
    assert t64 == pytest.approx(t128, rel=1e-9)
    assert t32 < 2 * t128


# ---- shared-memory k cap -----------------------------------------------------


def test_max_k_for_gtx480():
    # k = 8 window: 4*256 rows * 4 values * 8 B = 32 KiB <= 48 KiB
    assert max_k_for_shared_memory(48 * 1024, dtype_bytes=8) >= 8
    # 16 KiB cap: k = 8 (32 KiB) no longer fits; k = 7 (16 KiB) just does
    assert max_k_for_shared_memory(16 * 1024, dtype_bytes=8) == 7


def test_max_k_scales_with_dtype():
    k64 = max_k_for_shared_memory(48 * 1024, dtype_bytes=8)
    k32 = max_k_for_shared_memory(48 * 1024, dtype_bytes=4)
    assert k32 == k64 + 1


def test_max_k_scales_with_c():
    k1 = max_k_for_shared_memory(48 * 1024, c=1)
    k4 = max_k_for_shared_memory(48 * 1024, c=4)
    assert k4 == k1 - 2


def test_max_k_consistent_with_window():
    for limit in (8 * 1024, 16 * 1024, 48 * 1024):
        k = max_k_for_shared_memory(limit)
        assert BufferedSlidingWindow(k=k).smem_bytes() <= limit
        assert BufferedSlidingWindow(k=k + 1).smem_bytes() > limit


def test_planner_caps_k_on_small_smem_device():
    tiny = GTX480.with_overrides(
        name="tiny", shared_mem_per_sm=16 * 1024, max_shared_mem_per_block=16 * 1024
    )
    gpu = GpuHybridSolver(device=tiny)
    k, _ = gpu.plan(1, 1 << 20)
    assert k == 7
    # and the prediction runs without an occupancy error
    rep = gpu.predict(1, 1 << 20)
    assert rep.k == 7
    assert rep.total_s > 0


def test_planner_keeps_k8_on_gtx480():
    gpu = GpuHybridSolver()
    assert gpu.plan(1, 1 << 20)[0] == 8


def test_windows_per_block_changes_prediction():
    base = GpuHybridSolver(windows_per_block=1).predict(64, 16384)
    mux = GpuHybridSolver(windows_per_block=4).predict(64, 16384)
    c_base, _ = base.stage("PCR")
    c_mux, _ = mux.stage("PCR")
    assert c_mux.smem_per_block == 4 * c_base.smem_per_block
    assert c_mux.threads_per_block == 4 * c_base.threads_per_block
