"""PCR: step semantics, decoupling property, sweep, solve, interleaving."""

import numpy as np
import pytest

from repro.core.pcr import (
    merge_interleaved,
    pcr_solve,
    pcr_solve_batch,
    pcr_step,
    pcr_sweep,
    pcr_then_thomas_batch,
    split_interleaved,
)
from repro.util.tridiag import BatchTridiagonal, dense_from_diagonals

from .conftest import make_batch, make_system, max_err, reference_solve


@pytest.mark.parametrize("n", [1, 2, 3, 5, 8, 16, 31, 64, 100, 513])
def test_solve_matches_reference(n):
    a, b, c, d = make_system(n, seed=n)
    x = pcr_solve(a, b, c, d)
    assert max_err(x, reference_solve(a, b, c, d)[0]) < 1e-10


@pytest.mark.parametrize("m,n", [(1, 64), (7, 100), (32, 17)])
def test_solve_batch_matches_reference(m, n):
    a, b, c, d = make_batch(m, n, seed=m + n)
    x = pcr_solve_batch(a, b, c, d)
    assert max_err(x, reference_solve(a, b, c, d)) < 1e-10


def test_step_preserves_solution():
    """A PCR step transforms the system but not its solution."""
    a, b, c, d = make_batch(1, 32, seed=2)
    x_ref = reference_solve(a, b, c, d)[0]
    a2, b2, c2, d2 = pcr_step(a, b, c, d, 1)
    # the reduced rows with stride-2 coupling, checked via dense algebra
    # on the interleaved subsystems
    for j in range(2):
        aa, bb, cc, dd = (v[0, j::2] for v in (a2, b2, c2, d2))
        dense = dense_from_diagonals(
            np.r_[0.0, aa[1:]], bb, np.r_[cc[:-1], 0.0]
        )
        x_sub = np.linalg.solve(dense, dd)
        assert np.allclose(x_sub, x_ref[j::2], atol=1e-10)


@pytest.mark.parametrize("k", [1, 2, 3, 4])
def test_sweep_decouples_rows(k):
    """After k steps, row i only couples to rows i ± 2^k."""
    n = 64
    a, b, c, d = make_batch(1, n, seed=k)
    a2, b2, c2, d2 = pcr_sweep(a, b, c, d, k)
    g = 1 << k
    # boundary rows must have lost their off-diagonals entirely
    assert np.allclose(a2[0, :g], 0.0)
    assert np.allclose(c2[0, n - g :], 0.0)
    # and each interleaved subsystem solves to the right answer
    x_ref = reference_solve(a, b, c, d)[0]
    for j in range(g):
        aa, bb, cc, dd = (v[0, j::g] for v in (a2, b2, c2, d2))
        dense = dense_from_diagonals(np.r_[0.0, aa[1:]], bb, np.r_[cc[:-1], 0.0])
        assert np.allclose(np.linalg.solve(dense, dd), x_ref[j::g], atol=1e-9)


def test_sweep_zero_steps_is_identity():
    a, b, c, d = make_batch(2, 16, seed=4)
    out = pcr_sweep(a, b, c, d, 0)
    for orig, new in zip((a, b, c, d), out):
        assert np.array_equal(orig, new)


def test_sweep_rejects_negative_steps():
    a, b, c, d = make_batch(1, 8)
    with pytest.raises(ValueError, match="steps"):
        pcr_sweep(a, b, c, d, -1)


def test_step_stride_beyond_n_gives_diagonal_system():
    a, b, c, d = make_batch(1, 8, seed=6)
    a2, b2, c2, d2 = pcr_step(a, b, c, d, 8)
    assert np.allclose(a2, 0.0)
    assert np.allclose(c2, 0.0)
    # b, d unchanged when no neighbours are in range
    assert np.allclose(b2, b)
    assert np.allclose(d2, d)


@pytest.mark.parametrize("k", [0, 1, 2, 3])
@pytest.mark.parametrize("n", [16, 33, 100])
def test_pcr_then_thomas_matches_reference(k, n):
    a, b, c, d = make_batch(3, n, seed=n + k)
    x = pcr_then_thomas_batch(a, b, c, d, k)
    assert max_err(x, reference_solve(a, b, c, d)) < 1e-10


@pytest.mark.parametrize("n,k", [(16, 2), (20, 2), (37, 3), (64, 0)])
def test_split_merge_roundtrip(n, k):
    rng = np.random.default_rng(n)
    arr = rng.standard_normal((3, n))
    merged = merge_interleaved(split_interleaved(arr, k), k, n)
    assert np.array_equal(arr, merged)


def test_split_shapes():
    arr = np.arange(12.0).reshape(1, 12)
    out = split_interleaved(arr, 2)
    assert out.shape == (4, 3)
    assert np.array_equal(out[0], [0.0, 4.0, 8.0])
    assert np.array_equal(out[3], [3.0, 7.0, 11.0])


def test_merge_rejects_bad_rowcount():
    with pytest.raises(ValueError, match="divisible"):
        merge_interleaved(np.zeros((3, 4)), 1, 8)


def test_float32_roundtrip():
    a, b, c, d = make_batch(2, 48, dtype=np.float32, seed=8)
    x = pcr_solve_batch(a, b, c, d)
    assert x.dtype == np.float32
    assert max_err(x, reference_solve(a, b, c, d)) < 1e-3


def test_residual_small_on_poisson():
    """Weakly dominant Poisson stencil — the tough well-posed case."""
    n = 256
    a = np.full(n, -1.0)
    b = np.full(n, 2.0)
    c = np.full(n, -1.0)
    a[0] = 0.0
    c[-1] = 0.0
    d = np.sin(np.linspace(0, 3, n))
    x = pcr_solve(a, b, c, d)
    batch = BatchTridiagonal(a[None], b[None], c[None], d[None])
    r = batch.residual(x[None])
    assert np.abs(r).max() < 1e-8
