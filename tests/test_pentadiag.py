"""Batched pentadiagonal LU (cuPentBatch-style interleaved layout)."""

import numpy as np
import pytest

from repro.core.pentadiag import (
    penta_factor,
    penta_to_dense,
    pentadiag_solve_batch,
)
from repro.workloads.generators import random_penta_batch


@pytest.mark.parametrize("n", [5, 8, 33, 128])
def test_matches_dense(n):
    m = 4
    e, a, b, c, f, d = random_penta_batch(m, n, seed=n)
    x = pentadiag_solve_batch(e, a, b, c, f, d)
    dense = penta_to_dense(e, a, b, c, f)
    ref = np.linalg.solve(dense, d[..., None])[..., 0]
    assert np.allclose(x, ref, atol=1e-9)


def test_prepared_bitwise_matches_cold():
    e, a, b, c, f, d = random_penta_batch(8, 64, seed=7)
    cold = pentadiag_solve_batch(e, a, b, c, f, d)
    fact = penta_factor(e, a, b, c, f)
    assert np.array_equal(fact.solve(d), cold)
    # a second RHS through the same factorization
    rng = np.random.default_rng(11)
    d2 = rng.standard_normal(d.shape)
    assert np.array_equal(
        fact.solve(d2), pentadiag_solve_batch(e, a, b, c, f, d2)
    )


def test_zero_outer_diagonals_bitwise_equals_thomas():
    """With e = f = 0 the LU recurrences collapse to exactly the scalar
    Thomas op sequence — the degenerate penta solve is *bitwise* the
    tridiagonal solve."""
    from repro.core.thomas import thomas_solve_batch
    from repro.workloads.generators import random_batch

    m, n = 6, 96
    a, b, c, d = random_batch(m, n, seed=3)
    z = np.zeros_like(b)
    x_penta = pentadiag_solve_batch(z, a, b, c, z, d)
    x_tri = thomas_solve_batch(a, b, c, d)
    assert np.array_equal(x_penta, x_tri)


@pytest.mark.parametrize("n", [1, 2])
def test_tiny_n_edges(n):
    """N = 1 (pure diagonal) and N = 2 (no second diagonals at all)."""
    m = 3
    rng = np.random.default_rng(n)
    b = 4.0 + rng.random((m, n))
    z = np.zeros((m, n))
    a = z.copy()
    c = z.copy()
    if n == 2:
        a[:, 1] = rng.standard_normal(m)
        c[:, 0] = rng.standard_normal(m)
    d = rng.standard_normal((m, n))
    x = pentadiag_solve_batch(z, a, b, c, z, d)
    dense = penta_to_dense(z, a, b, c, z)
    ref = np.linalg.solve(dense, d[..., None])[..., 0]
    assert np.allclose(x, ref, atol=1e-12)


def test_float32_preserved():
    e, a, b, c, f, d = (
        v.astype(np.float32)
        for v in random_penta_batch(4, 32, seed=9, dominance=4.0)
    )
    x = pentadiag_solve_batch(e, a, b, c, f, d)
    assert x.dtype == np.float32
    fact = penta_factor(e, a, b, c, f)
    assert fact.dtype == np.float32
    assert np.array_equal(fact.solve(d), x)


def test_factorization_reports_size():
    e, a, b, c, f, _ = random_penta_batch(4, 16, seed=1)
    fact = penta_factor(e, a, b, c, f)
    assert fact.m == 4 and fact.n == 16
    assert fact.nbytes == 5 * 4 * 16 * 8


def test_validation():
    e, a, b, c, f, d = random_penta_batch(2, 8, seed=0)
    with pytest.raises(ValueError, match="shape"):
        pentadiag_solve_batch(e, a, b, c, f, d[:, :4])
    # out-of-matrix pads are zeroed by validation, not an error
    # (same contract as the tridiagonal batch checks)
    bad_e = e.copy()
    bad_e[:, 0] = 1.0
    assert np.array_equal(
        pentadiag_solve_batch(bad_e, a, b, c, f, d),
        pentadiag_solve_batch(e, a, b, c, f, d),
    )
    with pytest.raises(ValueError, match="non-finite"):
        pentadiag_solve_batch(e, a, b, c, f, np.full_like(d, np.nan))


def test_solve_shard_bitwise_independent_of_bounds():
    e, a, b, c, f, d = random_penta_batch(9, 40, seed=13)
    fact = penta_factor(e, a, b, c, f)
    whole = fact.solve(d)
    sharded = np.empty_like(d)
    for lo, hi in ((0, 4), (4, 7), (7, 9)):
        fact.solve_shard(d, sharded, lo, hi)
    assert np.array_equal(sharded, whole)
