"""Cyclic tridiagonal solver and Hockney's fast Poisson solver."""

import numpy as np
import pytest

from repro.core.periodic import solve_periodic, solve_periodic_batch
from repro.workloads.poisson_fft import poisson_dirichlet_fft, poisson_residual


def _cyclic_dense(a, b, c):
    n = b.shape[0]
    A = np.zeros((n, n))
    A[np.arange(n), np.arange(n)] = b
    A[np.arange(1, n), np.arange(n - 1)] = a[1:]
    A[np.arange(n - 1), np.arange(1, n)] = c[:-1]
    A[0, n - 1] = a[0]
    A[n - 1, 0] = c[-1]
    return A


def _make_cyclic(m, n, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, n))
    c = rng.standard_normal((m, n))
    b = 4.0 + np.abs(a) + np.abs(c) + np.abs(np.roll(a, -1)) * 0  # dominant
    d = rng.standard_normal((m, n))
    return a, b, c, d


@pytest.mark.parametrize("n", [3, 4, 8, 17, 64, 255])
def test_cyclic_matches_dense(n):
    a, b, c, d = _make_cyclic(1, n, seed=n)
    x = solve_periodic(a[0], b[0], c[0], d[0])
    ref = np.linalg.solve(_cyclic_dense(a[0], b[0], c[0]), d[0])
    assert np.allclose(x, ref, atol=1e-9)


def test_cyclic_batch():
    m, n = 5, 40
    a, b, c, d = _make_cyclic(m, n, seed=1)
    x = solve_periodic_batch(a, b, c, d)
    for i in range(m):
        ref = np.linalg.solve(_cyclic_dense(a[i], b[i], c[i]), d[i])
        assert np.allclose(x[i], ref, atol=1e-9)


def test_cyclic_reduces_to_tridiagonal_when_corners_zero():
    from .conftest import make_batch, reference_solve

    a, b, c, d = make_batch(2, 32, seed=2)  # padded: corners already 0
    x = solve_periodic_batch(a, b, c, d)
    assert np.allclose(x, reference_solve(a, b, c, d), atol=1e-9)


def test_cyclic_circulant_known_solution():
    """Circulant [-1, 3, -1] with constant RHS: x = d / (b + a + c)."""
    n = 16
    a = np.full(n, -1.0)
    b = np.full(n, 3.0)
    c = np.full(n, -1.0)
    d = np.full(n, 2.0)
    x = solve_periodic(a, b, c, d)
    assert np.allclose(x, 2.0)  # row sum = 1


def test_cyclic_algorithm_selectable():
    a, b, c, d = _make_cyclic(2, 48, seed=3)
    x1 = solve_periodic_batch(a, b, c, d, algorithm="thomas")
    x2 = solve_periodic_batch(a, b, c, d, algorithm="pcr")
    assert np.allclose(x1, x2, atol=1e-9)


def test_cyclic_rejects_tiny():
    with pytest.raises(ValueError, match="N >= 3"):
        solve_periodic(np.ones(2), np.full(2, 3.0), np.ones(2), np.ones(2))


def test_cyclic_shape_mismatch_is_validated_up_front():
    a, b, c, d = _make_cyclic(3, 16, seed=4)
    with pytest.raises(ValueError, match=r"share one \(M, N\) shape"):
        solve_periodic_batch(a, b, c[:, :-1], d)
    with pytest.raises(ValueError, match=r"share one \(M, N\) shape"):
        solve_periodic_batch(a[:2], b, c, d)


def test_cyclic_corners_survive_validation():
    # plain-batch validation zeroes the a[:,0]/c[:,-1] pads; the cyclic
    # path must NOT — the corners are the whole point.  A wrong
    # validator would silently return the non-periodic solution.
    a, b, c, d = _make_cyclic(2, 24, seed=5)
    a_orig, c_orig = a.copy(), c.copy()
    x = solve_periodic_batch(a, b, c, d)
    assert np.array_equal(a, a_orig) and np.array_equal(c, c_orig)
    for i in range(2):
        ref = np.linalg.solve(_cyclic_dense(a[i], b[i], c[i]), d[i])
        assert np.allclose(x[i], ref, atol=1e-9)


# ---- Sherman–Morrison singular guard ---------------------------------------


def _singular_mixed_batch(dtype, n=24):
    """Rows 0/2 healthy, row 1 the singular periodic Laplacian."""
    rng = np.random.default_rng(6)
    a = rng.standard_normal((3, n)).astype(dtype)
    c = rng.standard_normal((3, n)).astype(dtype)
    b = (4.0 + np.abs(a) + np.abs(c)).astype(dtype)
    a[1], c[1], b[1] = dtype(-1.0), dtype(-1.0), dtype(2.0)
    d = rng.standard_normal((3, n)).astype(dtype)
    return a, b, c, d


@pytest.mark.parametrize("dtype", [np.float64, np.float32])
def test_cyclic_singular_raises_naming_rows(dtype):
    from repro.core.periodic import CyclicSingularError

    a, b, c, d = _singular_mixed_batch(dtype)
    with pytest.raises(CyclicSingularError, match=r"row\(s\) \[1\]"):
        solve_periodic_batch(a, b, c, d)  # check=True is the default


@pytest.mark.parametrize("dtype", [np.float64, np.float32])
def test_cyclic_singular_check_false_warns_and_nans(dtype):
    a, b, c, d = _singular_mixed_batch(dtype)
    with pytest.warns(RuntimeWarning, match="singular Sherman"):
        x = solve_periodic_batch(a, b, c, d, check=False)
    assert np.isnan(x[1]).all()  # the singular system: all-NaN, no ±inf
    # healthy rows are bitwise what a fully healthy solve produces
    for i in (0, 2):
        ref = np.linalg.solve(
            _cyclic_dense(*(v[i].astype(np.float64) for v in (a, b, c))),
            d[i].astype(np.float64),
        )
        tol = 1e-9 if dtype is np.float64 else 1e-3
        assert np.allclose(x[i], ref, atol=tol)


def test_cyclic_singular_guard_on_direct_algorithms():
    from repro.core.periodic import CyclicSingularError

    a, b, c, d = _singular_mixed_batch(np.float64)
    with pytest.raises(CyclicSingularError):
        solve_periodic_batch(a, b, c, d, algorithm="thomas")
    with pytest.warns(RuntimeWarning):
        x = solve_periodic_batch(a, b, c, d, algorithm="pcr", check=False)
    assert np.isnan(x[1]).all()
    assert np.isfinite(x[0]).all() and np.isfinite(x[2]).all()


# ---- Hockney fast Poisson ------------------------------------------------------


def test_poisson_fft_residual_small():
    rng = np.random.default_rng(0)
    f = rng.standard_normal((31, 47))
    u = poisson_dirichlet_fft(f)
    assert poisson_residual(u, f) < 1e-10


def test_poisson_fft_matches_dense():
    ny, nx = 12, 9
    rng = np.random.default_rng(1)
    f = rng.standard_normal((ny, nx))
    u = poisson_dirichlet_fft(f)
    # dense 5-point Laplacian reference
    N = ny * nx
    A = np.zeros((N, N))
    for j in range(ny):
        for i in range(nx):
            r = j * nx + i
            A[r, r] = 4.0
            for jj, ii in ((j - 1, i), (j + 1, i), (j, i - 1), (j, i + 1)):
                if 0 <= jj < ny and 0 <= ii < nx:
                    A[r, jj * nx + ii] = -1.0
    ref = np.linalg.solve(A, f.reshape(-1)).reshape(ny, nx)
    assert np.allclose(u, ref, atol=1e-9)


def test_poisson_fft_anisotropic_spacing():
    rng = np.random.default_rng(2)
    f = rng.standard_normal((20, 20))
    u = poisson_dirichlet_fft(f, dx=0.5, dy=2.0)
    assert poisson_residual(u, f, dx=0.5, dy=2.0) < 1e-10


def test_poisson_fft_sine_eigenfunction():
    """-lap of a product sine mode is (lam_x + lam_y) times it."""
    ny = nx = 33
    jj, ii = np.meshgrid(np.arange(1, ny + 1), np.arange(1, nx + 1), indexing="ij")
    mode = np.sin(2 * np.pi * jj / (ny + 1)) * np.sin(3 * np.pi * ii / (nx + 1))
    lam = (2 - 2 * np.cos(2 * np.pi / (ny + 1))) + (2 - 2 * np.cos(3 * np.pi / (nx + 1)))
    u = poisson_dirichlet_fft(lam * mode)
    assert np.allclose(u, mode, atol=1e-10)


def test_poisson_fft_validation():
    with pytest.raises(ValueError):
        poisson_dirichlet_fft(np.zeros(5))
    with pytest.raises(ValueError):
        poisson_dirichlet_fft(np.zeros((1, 5)))


def test_poisson_fft_solver_injectable():
    from repro.core.thomas import thomas_solve_batch

    rng = np.random.default_rng(3)
    f = rng.standard_normal((16, 16))
    u1 = poisson_dirichlet_fft(f)
    u2 = poisson_dirichlet_fft(
        f, solver=lambda a, b, c, d: thomas_solve_batch(a, b, c, d)
    )
    assert np.allclose(u1, u2, atol=1e-11)
