"""Prepared-solve pipeline: coefficient fingerprinting, the engine's
factorization cache, the explicit ``repro.prepare`` handle, and the
RHS-only fast path's numerics/sharding/trace contract."""

import numpy as np
import pytest

import repro
from repro.engine import ExecutionEngine, PreparedPlan, coefficient_fingerprint
from repro.engine.prepared import FINGERPRINT_SAMPLE, ThomasRhsFactorization

from .conftest import make_batch, max_err, reference_solve

# (M, N) in the paper's large-M regime: Table III picks k = 0 (Thomas),
# where the RHS-only path is bitwise identical to the unprepared solve.
K0_SHAPE = (1024, 64)


# ----------------------------------------------------------- fingerprint


def test_fingerprint_is_deterministic():
    a, b, c, _ = make_batch(4, 64, seed=0)
    assert coefficient_fingerprint(a, b, c) == coefficient_fingerprint(a, b, c)
    assert coefficient_fingerprint(a, b, c) == coefficient_fingerprint(
        a.copy(), b.copy(), c.copy()
    )


def test_fingerprint_changes_with_values_shape_dtype():
    a, b, c, _ = make_batch(4, 64, seed=1)
    base = coefficient_fingerprint(a, b, c)
    b2 = b.copy()
    b2[2, 30] *= 1.0 + 1e-12
    assert coefficient_fingerprint(a, b2, c) != base
    assert coefficient_fingerprint(b, a, c) != base  # order matters
    af, bf, cf = (v.astype(np.float32) for v in (a, b, c))
    assert coefficient_fingerprint(af, bf, cf) != base
    a3, b3, c3, _ = make_batch(4, 32, seed=1)
    assert coefficient_fingerprint(a3, b3, c3) != base


def test_fingerprint_sampled_path_detects_any_change():
    # above FINGERPRINT_SAMPLE elements the digest samples positions but
    # folds in chunk-sum checksums — a change *between* samples flips it
    rng = np.random.default_rng(2)
    a = rng.standard_normal((8, FINGERPRINT_SAMPLE))  # 8x the threshold
    base = coefficient_fingerprint(a)
    a2 = a.copy()
    a2[3, 1237] += 1e-9
    assert coefficient_fingerprint(a2) != base


def test_fingerprint_offsample_sum_preserving_swap_changes_digest():
    """Regression: the 2^20 collision construction.

    The original large-array digest hashed a strided sample plus one
    position-blind total checksum.  Swapping the values at two
    positions the sample misses preserves both views bit-for-bit, so
    the digest collided and the engine served a stale factorization.
    The grid checksum (per-row *and* per-column chunk sums) must tell
    the two arrays apart.
    """
    from repro.engine.prepared import _sample_indices

    size = 1 << 20
    rng = np.random.default_rng(30)
    # integer-valued floats: every partial sum is exact, so the swap
    # preserves the total checksum bitwise regardless of summation order
    a = rng.integers(-512, 512, size).astype(np.float64)
    sampled = set(_sample_indices(size).tolist())
    i = next(p for p in range(size) if p not in sampled)
    j = next(p for p in range(size - 1, -1, -1) if p not in sampled)
    a[i], a[j] = 1.0, 2.0
    base = coefficient_fingerprint(a)
    a2 = a.copy()
    a2[i], a2[j] = a[j], a[i]
    # the old digest's two views are identical ...
    assert np.sum(a2) == np.sum(a)
    assert np.array_equal(a2[_sample_indices(size)], a[_sample_indices(size)])
    # ... but the grid checksum catches the moved value
    assert coefficient_fingerprint(a2) != base


def test_offsample_edit_invalidates_factorization_cache():
    # the same construction end to end: after the swap the engine must
    # re-eliminate, never serve the stale factorization
    m, n = 1024, 1024  # 2^20 elements per array: the checksummed regime
    a, b, c, d = make_batch(m, n, seed=31)
    engine = ExecutionEngine()
    _info_solve(engine, a, b, c, d)
    _, info = _info_solve(engine, a, b, c, d)
    assert info["factorization"] == "factored"

    from repro.engine.prepared import _sample_indices

    sampled = set(_sample_indices(m * n).tolist())
    i = next(p for p in range(m * n) if p not in sampled)
    j = next(p for p in range(m * n - 1, -1, -1) if p not in sampled)
    flat = b.copy().reshape(-1)
    flat[i], flat[j] = flat[j], flat[i]  # sum-preserving off-sample edit
    b2 = flat.reshape(m, n)
    x, info = _info_solve(engine, a, b2, c, d)
    assert info["factorization"] == "miss"  # new digest: first sighting
    assert not info["rhs_only"]
    assert np.array_equal(
        x, engine.solve_batch(a, b2, c, d, fingerprint=False)
    )


# ------------------------------------------------ factorization cache


def _info_solve(engine, a, b, c, d, **kw):
    info = {}
    x = engine.solve_batch(a, b, c, d, info=info, **kw)
    return x, info


def test_auto_fingerprint_lifecycle_k0():
    m, n = K0_SHAPE
    a, b, c, d = make_batch(m, n, seed=3)
    engine = ExecutionEngine()
    ref = reference_solve(a, b, c, d)

    x1, i1 = _info_solve(engine, a, b, c, d)
    x2, i2 = _info_solve(engine, a, b, c, d)
    x3, i3 = _info_solve(engine, a, b, c, d)
    assert i1["factorization"] == "miss"       # first sighting: ledger only
    assert i2["factorization"] == "factored"   # second: build + serve
    assert i3["factorization"] == "hit"
    assert not i1["rhs_only"] and i2["rhs_only"] and i3["rhs_only"]
    # ... and the fast path changes no bits
    assert np.array_equal(x1, x2) and np.array_equal(x1, x3)
    assert max_err(x1, ref) < 1e-11
    assert engine.stats.factorizations_built == 1
    assert engine.stats.fingerprint_hits >= 1
    assert engine.stats.factorization_bytes > 0


def test_auto_fingerprint_new_rhs_hits_cache():
    m, n = K0_SHAPE
    a, b, c, d = make_batch(m, n, seed=4)
    engine = ExecutionEngine()
    _info_solve(engine, a, b, c, d)
    _info_solve(engine, a, b, c, d)
    d2 = np.random.default_rng(9).standard_normal((m, n))
    x, info = _info_solve(engine, a, b, c, d2)
    assert info["factorization"] == "hit"
    assert np.array_equal(
        x, engine.solve_batch(a, b, c, d2, fingerprint=False)
    )


def test_changed_coefficients_miss():
    m, n = K0_SHAPE
    a, b, c, d = make_batch(m, n, seed=5)
    engine = ExecutionEngine()
    _info_solve(engine, a, b, c, d)
    _info_solve(engine, a, b, c, d)
    b2 = b + 0.25
    _, info = _info_solve(engine, a, b2, c, d)
    assert info["factorization"] == "miss"


def test_auto_stays_off_for_hybrid_plans():
    # k > 0 RHS-only agrees to rounding, not bitwise — the default
    # (fingerprint=None) must not silently change results there
    a, b, c, d = make_batch(8, 256, seed=6)
    engine = ExecutionEngine()
    for _ in range(3):
        _, info = _info_solve(engine, a, b, c, d, k=4)
        assert info["factorization"] == "n/a"
        assert not info["rhs_only"]
    assert engine.stats.factorizations_built == 0


def test_forced_fingerprint_runs_hybrid_prepared():
    a, b, c, d = make_batch(8, 256, seed=7)
    engine = ExecutionEngine()
    ref = engine.solve_batch(a, b, c, d, k=4, fingerprint=False)
    x1, i1 = _info_solve(engine, a, b, c, d, k=4, fingerprint=True)
    x2, i2 = _info_solve(engine, a, b, c, d, k=4, fingerprint=True)
    assert i1["factorization"] == "factored"   # True forces factor-on-first
    assert i2["factorization"] == "hit" and i2["rhs_only"]
    assert np.allclose(x1, ref, rtol=1e-10, atol=1e-13)
    assert np.array_equal(x1, x2)


def test_fingerprint_false_disables_cache():
    m, n = K0_SHAPE
    a, b, c, d = make_batch(m, n, seed=8)
    engine = ExecutionEngine()
    for _ in range(3):
        _, info = _info_solve(engine, a, b, c, d, fingerprint=False)
        assert info["factorization"] == "off"
        assert not info["rhs_only"]
    assert engine.stats.fingerprint_hits == 0


def test_factorization_cache_eviction_is_lru():
    m, n = 64, 32
    engine = ExecutionEngine(max_factorizations=2)
    batches = [make_batch(m, n, seed=20 + i) for i in range(3)]
    for a, b, c, d in batches:
        _info_solve(engine, a, b, c, d, k=0, fingerprint=True)
    assert engine.stats.factorizations_built == 3
    assert engine.stats.factorization_evictions == 1
    # oldest entry was evicted: solving it again rebuilds
    a, b, c, d = batches[0]
    _, info = _info_solve(engine, a, b, c, d, k=0, fingerprint=True)
    assert info["factorization"] == "factored"


def test_clear_drops_factorizations():
    m, n = K0_SHAPE
    a, b, c, d = make_batch(m, n, seed=9)
    engine = ExecutionEngine()
    _info_solve(engine, a, b, c, d)
    _info_solve(engine, a, b, c, d)
    assert engine.stats.factorization_bytes > 0
    engine.clear()
    assert engine.stats.factorization_bytes == 0
    _, info = _info_solve(engine, a, b, c, d)
    assert info["factorization"] == "miss"  # ledger cleared too


# ------------------------------------------------------------ handle API


def test_prepare_handle_bitwise_k0():
    m, n = K0_SHAPE
    a, b, c, d = make_batch(m, n, seed=10)
    engine = ExecutionEngine()
    handle = engine.prepare(a, b, c)
    assert isinstance(handle, PreparedPlan)
    assert handle.k == 0
    x = handle.solve(d)
    assert np.array_equal(
        x, engine.solve_batch(a, b, c, d, fingerprint=False)
    )
    assert handle.solves == 1


def test_prepare_handle_hybrid_allclose():
    a, b, c, d = make_batch(8, 300, seed=11)
    engine = ExecutionEngine()
    handle = engine.prepare(a, b, c, k=3)
    x = handle.solve(d)
    assert max_err(x, reference_solve(a, b, c, d)) < 1e-10


def test_prepare_seeds_solve_batch_cache():
    # an explicit handle and a later solve_batch with the same
    # coefficients share one cached factorization
    m, n = K0_SHAPE
    a, b, c, d = make_batch(m, n, seed=12)
    engine = ExecutionEngine()
    handle = engine.prepare(a, b, c)
    _, info = _info_solve(engine, a, b, c, d)
    assert info["factorization"] == "hit"
    assert engine.stats.factorizations_built == 1
    assert np.array_equal(
        handle.solve(d), engine.solve_batch(a, b, c, d, fingerprint=False)
    )


def test_prepare_handle_describe_and_nbytes():
    a, b, c, _ = make_batch(4, 128, seed=13)
    engine = ExecutionEngine()
    handle = engine.prepare(a, b, c, k=2)
    desc = handle.describe()
    assert desc["m"] == 4 and desc["n"] == 128 and desc["k"] == 2
    assert desc["fingerprint"] == coefficient_fingerprint(a, b, c)
    assert handle.nbytes > 0
    assert handle.dtype == np.float64


def test_prepare_handle_validates_rhs():
    a, b, c, _ = make_batch(4, 128, seed=14)
    handle = ExecutionEngine().prepare(a, b, c)
    with pytest.raises(ValueError, match="shape"):
        handle.solve(np.zeros((4, 64)))
    bad = np.zeros((4, 128))
    bad[1, 3] = np.nan
    with pytest.raises(ValueError):
        handle.solve(bad)


def test_module_level_prepare_uses_default_engine():
    m, n = K0_SHAPE
    a, b, c, d = make_batch(m, n, seed=15)
    handle = repro.prepare(a, b, c)
    x = handle.solve(d)
    assert max_err(x, reference_solve(a, b, c, d)) < 1e-11
    trace = repro.last_trace()
    assert trace.backend == "prepared"
    assert trace.factorization == "handle"
    assert trace.rhs_only is True


def test_prepared_solve_preserves_float32():
    a, b, c, d = make_batch(512, 64, dtype=np.float32, seed=16)
    engine = ExecutionEngine()
    handle = engine.prepare(a, b, c, k=0)
    x = handle.solve(d)
    assert x.dtype == np.float32
    assert np.array_equal(
        x, engine.solve_batch(a, b, c, d, k=0, fingerprint=False)
    )


# -------------------------------------------------------------- sharding


@pytest.mark.parametrize("k", [0, 4], ids=["thomas", "hybrid"])
def test_prepared_sharding_is_bitwise_invisible(k):
    a, b, c, d = make_batch(64, 256, seed=17)
    engine = ExecutionEngine()
    handle = engine.prepare(a, b, c, k=k)
    x1 = handle.solve(d)
    xw = handle.solve(d, workers=3)
    assert np.array_equal(x1, xw)
    assert engine.stats.sharded_solves >= 1


def test_prepared_workers_route_through_threaded_backend():
    m, n = K0_SHAPE
    a, b, c, d = make_batch(m, n, seed=18)
    x1 = repro.solve_batch(a, b, c, d, fingerprint=True)
    xw = repro.solve_batch(a, b, c, d, workers=3, fingerprint=True)
    trace = repro.last_trace()
    assert trace.backend == "threaded"
    assert trace.rhs_only is True
    assert np.array_equal(x1, xw)


# ----------------------------------------------------- periodic prepared


def _cyclic_batch(m, n, dtype=np.float64, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, n)).astype(dtype)
    c = rng.standard_normal((m, n)).astype(dtype)
    b = (4.0 + np.abs(a) + np.abs(c)).astype(dtype)
    d = rng.standard_normal((m, n)).astype(dtype)
    return a, b, c, d


def test_periodic_auto_lifecycle_k0():
    m, n = K0_SHAPE
    a, b, c, d = _cyclic_batch(m, n, seed=32)
    engine = ExecutionEngine()
    info1, info2, info3 = {}, {}, {}
    x1 = engine.solve_periodic(a, b, c, d, info=info1)
    x2 = engine.solve_periodic(a, b, c, d, info=info2)
    x3 = engine.solve_periodic(a, b, c, d, info=info3)
    assert info1["factorization"] == "miss"
    assert info2["factorization"] == "factored"
    assert info3["factorization"] == "hit"
    assert not info1["rhs_only"] and info2["rhs_only"] and info3["rhs_only"]
    assert all(i["periodic"] for i in (info1, info2, info3))
    # the cyclic RHS-only fast path changes no bits at k = 0
    assert np.array_equal(x1, x2) and np.array_equal(x1, x3)
    assert engine.stats.factorizations_built == 1
    assert engine.stats.rhs_only_solves == 2


def test_periodic_and_plain_factorizations_do_not_collide():
    # identical (padded) coefficient arrays, so identical digests: only
    # the cache key's periodic flag separates the two factorizations —
    # neither solve may ever serve the other's entry
    m, n = K0_SHAPE
    a, b, c, d = make_batch(m, n, seed=33)
    engine = ExecutionEngine()
    _info_solve(engine, a, b, c, d)
    _, info = _info_solve(engine, a, b, c, d)
    assert info["factorization"] == "factored"  # plain entry cached
    info = {}
    engine.solve_periodic(a, b, c, d, info=info)
    assert info["factorization"] == "miss"  # cyclic key: first sighting


def test_periodic_prepare_handle_bitwise_k0():
    m, n = K0_SHAPE
    a, b, c, d = _cyclic_batch(m, n, seed=34)
    engine = ExecutionEngine()
    handle = engine.prepare(a, b, c, periodic=True)
    assert handle.k == 0
    assert handle.describe()["periodic"] is True
    x = handle.solve(d)
    assert np.array_equal(
        x, engine.solve_periodic(a, b, c, d, fingerprint=False)
    )


def test_periodic_prepare_handle_hybrid_allclose():
    a, b, c, d = _cyclic_batch(8, 300, seed=35)
    engine = ExecutionEngine()
    handle = engine.prepare(a, b, c, periodic=True, k=3)
    x = handle.solve(d)
    ref = engine.solve_periodic(a, b, c, d, k=3, fingerprint=False)
    assert np.allclose(x, ref, rtol=1e-10, atol=1e-13)


def test_periodic_prepare_seeds_solve_periodic_cache():
    m, n = K0_SHAPE
    a, b, c, d = _cyclic_batch(m, n, seed=36)
    engine = ExecutionEngine()
    handle = engine.prepare(a, b, c, periodic=True)
    info = {}
    x = engine.solve_periodic(a, b, c, d, info=info)
    assert info["factorization"] == "hit"
    assert engine.stats.factorizations_built == 1
    assert np.array_equal(handle.solve(d), x)


def test_periodic_prepared_sharding_is_bitwise_invisible():
    a, b, c, d = _cyclic_batch(64, 256, seed=37)
    engine = ExecutionEngine()
    handle = engine.prepare(a, b, c, periodic=True, k=0)
    assert np.array_equal(handle.solve(d), handle.solve(d, workers=3))
    assert engine.stats.sharded_solves >= 1


def test_periodic_prepare_singular_raises_at_factor_time():
    from repro.core.periodic import CyclicSingularError

    n = 24
    a = np.full((2, n), -1.0)
    c = np.full((2, n), -1.0)
    b = np.full((2, n), 2.0)  # periodic Laplacian: constant nullvector
    with pytest.raises(CyclicSingularError, match="row"):
        ExecutionEngine().prepare(a, b, c, periodic=True)


def test_module_level_prepare_periodic():
    m, n = K0_SHAPE
    a, b, c, d = _cyclic_batch(m, n, seed=38)
    handle = repro.prepare(a, b, c, periodic=True)
    x = handle.solve(d)
    trace = repro.last_trace()
    assert trace.backend == "prepared"
    assert trace.periodic is True
    assert trace.rhs_only is True
    assert np.array_equal(
        x, repro.solve_periodic_batch(a, b, c, d, fingerprint=False)
    )


# ------------------------------------------------- RHS factorization unit


def test_thomas_rhs_factorization_matches_reference():
    a, b, c, d = make_batch(16, 40, seed=19)
    fact = ThomasRhsFactorization.factor(a, b, c)
    assert fact.m == 16 and fact.n == 40
    assert fact.nbytes == 3 * a.nbytes
    from repro.engine.workspace import PreparedWorkspace

    engine = ExecutionEngine()
    plan = engine.plan_for(16, 40, np.dtype(np.float64), k=0)
    ws = PreparedWorkspace(plan)
    out = np.empty_like(d)
    fact.solve_shard(ws, d, out, 0, 16)
    assert max_err(out, reference_solve(a, b, c, d)) < 1e-11
