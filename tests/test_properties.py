"""Property-based tests (hypothesis) on the core invariants.

Strategies generate strictly diagonally dominant systems — the regime
where every pivot-free algorithm here is provably stable — with varied
shapes, scales and dtypes; the properties are the load-bearing claims:

* every solver agrees with LAPACK on every valid input;
* tiled PCR is exactly the monolithic sweep, for every (n, k, c, W);
* a PCR step never changes the solution;
* interleave/deinterleave and split/merge are lossless;
* the cost formulas match their closed forms.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cost_model import f_redundant_loads, g_redundant_elims
from repro.core.cr import cr_solve_batch
from repro.core.hybrid import HybridSolver
from repro.core.layout import deinterleave, interleave
from repro.core.pcr import (
    merge_interleaved,
    pcr_solve_batch,
    pcr_step,
    pcr_sweep,
    split_interleaved,
)
from repro.core.rd import rd_solve_batch
from repro.core.thomas import thomas_solve_batch
from repro.core.tiled_pcr import tiled_pcr_sweep

from .conftest import max_err, reference_solve


@st.composite
def dominant_batch(draw, max_m=4, max_n=96, min_n=1):
    """A strictly diagonally dominant (M, N) batch with varied scales."""
    m = draw(st.integers(1, max_m))
    n = draw(st.integers(min_n, max_n))
    seed = draw(st.integers(0, 2**31 - 1))
    dominance = draw(st.floats(0.5, 8.0))
    scale = 10.0 ** draw(st.integers(-3, 3))
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, n))
    c = rng.standard_normal((m, n))
    a[:, 0] = 0.0
    c[:, -1] = 0.0
    b = dominance + np.abs(a) + np.abs(c)
    sign = draw(st.sampled_from([1.0, -1.0]))
    d = rng.standard_normal((m, n))
    return a * scale, sign * b * scale, c * scale, d * scale


@settings(max_examples=60, deadline=None)
@given(batch=dominant_batch())
def test_all_solvers_agree_with_lapack(batch):
    a, b, c, d = batch
    ref = reference_solve(a, b, c, d)
    for solver in (thomas_solve_batch, cr_solve_batch, pcr_solve_batch, rd_solve_batch):
        assert max_err(solver(a, b, c, d), ref) < 1e-7


@settings(max_examples=40, deadline=None)
@given(
    batch=dominant_batch(max_m=2, max_n=200, min_n=8),
    k=st.integers(1, 4),
    n_windows=st.integers(1, 4),
    c_scale=st.integers(1, 3),
)
def test_tiled_pcr_equals_monolithic(batch, k, n_windows, c_scale):
    a, b, c, d = batch
    n = b.shape[1]
    if (1 << k) > max(1, n // 2):
        k = 1
    if (1 << k) > max(1, n // 2):
        return
    ref = pcr_sweep(a, b, c, d, k)
    out = tiled_pcr_sweep(
        a, b, c, d, k, n_windows=n_windows, subtile_scale=c_scale
    )
    for x, y in zip(out, ref):
        scale = np.maximum(np.abs(y), 1e-30)
        assert np.max(np.abs(x - y) / scale) < 1e-9


@settings(max_examples=40, deadline=None)
@given(batch=dominant_batch(max_m=2, max_n=64, min_n=2), k=st.integers(1, 5))
def test_pcr_sweep_preserves_solution(batch, k):
    """After k doubling-schedule steps, every transformed row — now
    coupling rows i ± 2^k — is still satisfied by the original solution.
    (Steps only make sense along the doubling schedule: ``pcr_step`` with
    stride s assumes the input couples at distance s.)"""
    a, b, c, d = batch
    ref = reference_solve(a, b, c, d)
    a2, b2, c2, d2 = pcr_sweep(a, b, c, d, k)
    n = b.shape[1]
    g = 1 << k
    for m in range(b.shape[0]):
        for i in range(n):
            v = b2[m, i] * ref[m, i]
            if i - g >= 0:
                v += a2[m, i] * ref[m, i - g]
            if i + g < n:
                v += c2[m, i] * ref[m, i + g]
            tol = 1e-6 * max(1.0, abs(d2[m, i]), np.abs(b2[m]).max())
            assert abs(v - d2[m, i]) < tol


@settings(max_examples=50, deadline=None)
@given(batch=dominant_batch(max_m=3, max_n=120), k=st.integers(0, 4))
def test_hybrid_matches_lapack_for_every_k(batch, k):
    a, b, c, d = batch
    x = HybridSolver(k=k).solve_batch(a, b, c, d)
    assert max_err(x, reference_solve(a, b, c, d)) < 1e-7


@settings(max_examples=50, deadline=None)
@given(batch=dominant_batch(max_m=2, max_n=150, min_n=4), k=st.integers(1, 4))
def test_fusion_never_changes_answer(batch, k):
    a, b, c, d = batch
    x1 = HybridSolver(k=k, fuse=False).solve_batch(a, b, c, d)
    x2 = HybridSolver(k=k, fuse=True).solve_batch(a, b, c, d)
    assert np.array_equal(x1, x2)


@settings(max_examples=50, deadline=None)
@given(
    g=st.integers(1, 16),
    length=st.integers(1, 40),
    seed=st.integers(0, 10**6),
)
def test_interleave_roundtrip(g, length, seed):
    rng = np.random.default_rng(seed)
    arr = rng.standard_normal((g, length))
    assert np.array_equal(deinterleave(interleave(arr), g), arr)


@settings(max_examples=50, deadline=None)
@given(
    n=st.integers(1, 128),
    k=st.integers(0, 5),
    seed=st.integers(0, 10**6),
)
def test_split_merge_roundtrip_property(n, k, seed):
    rng = np.random.default_rng(seed)
    arr = rng.standard_normal((2, n))
    assert np.array_equal(merge_interleaved(split_interleaved(arr, k), k, n), arr)


@settings(max_examples=100, deadline=None)
@given(k=st.integers(0, 20))
def test_cost_closed_forms(k):
    assert f_redundant_loads(k) == 2**k - 1
    # Eq. 9 simplified: g(k) = (k - 2) 2^k + k + 2 - k... verify against
    # direct expansion
    direct = k * (2**k - 1) - (2 ** (k + 1) - k - 2)
    assert g_redundant_elims(k) == direct


@settings(max_examples=30, deadline=None)
@given(batch=dominant_batch(max_m=2, max_n=100, min_n=1))
def test_solution_residual_bounded(batch):
    """Residuals stay small relative to the data for dominant systems."""
    a, b, c, d = batch
    x = HybridSolver().solve_batch(a, b, c, d)
    r = b * x - d
    r[:, 1:] += a[:, 1:] * x[:, :-1]
    r[:, :-1] += c[:, :-1] * x[:, 1:]
    scale = np.abs(d).max() + np.abs(b).max() * np.abs(x).max()
    assert np.abs(r).max() <= 1e-10 * max(scale, 1e-30)


@settings(max_examples=30, deadline=None)
@given(batch=dominant_batch(max_m=2, max_n=100, min_n=3))
def test_periodic_solver_residual(batch):
    """Cyclic solves satisfy the cyclic system, for any corner values."""
    from repro.core.periodic import solve_periodic_batch

    a, b, c, d = batch
    x = solve_periodic_batch(a, b, c, d)
    n = b.shape[1]
    r = b * x - d
    r[:, 1:] += a[:, 1:] * x[:, :-1]
    r[:, :-1] += c[:, :-1] * x[:, 1:]
    r[:, 0] += a[:, 0] * x[:, -1]   # the cyclic corners
    r[:, -1] += c[:, -1] * x[:, 0]
    scale = np.abs(d).max() + np.abs(b).max() * max(np.abs(x).max(), 1.0)
    assert np.abs(r).max() <= 1e-8 * max(scale, 1e-30)


@settings(max_examples=30, deadline=None)
@given(
    batch=dominant_batch(max_m=2, max_n=80, min_n=2),
    k=st.integers(0, 4),
    scale=st.floats(0.1, 10.0),
)
def test_factorization_reuse_linearity(batch, k, scale):
    """fact.solve is linear in d and matches the direct hybrid."""
    from repro.core.factorize import HybridFactorization
    from repro.core.hybrid import HybridSolver

    a, b, c, d = batch
    fact = HybridFactorization.factor(a, b, c, k=k)
    x1 = fact.solve(d)
    direct = HybridSolver(k=k).solve_batch(a, b, c, d)
    ref = reference_solve(a, b, c, d)
    assert max_err(x1, ref) < 1e-6
    assert max_err(direct, ref) < 1e-6
    x2 = fact.solve(scale * d)
    assert np.allclose(x2, scale * x1, rtol=1e-9, atol=1e-12)


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(8, 200),
    k=st.integers(1, 5),
    seed=st.integers(0, 10**6),
)
def test_exec_window_equals_sweep_property(n, k, seed):
    """The executable SIMT window kernel == the monolithic sweep, for
    arbitrary sizes and depths (clamped to sensible k)."""
    from repro.kernels.exec_kernels import run_tiled_pcr

    if (1 << k) > max(1, n // 2):
        k = 1
    if (1 << k) > max(1, n // 2):
        return
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((1, n))
    c = rng.standard_normal((1, n))
    a[:, 0] = 0.0
    c[:, -1] = 0.0
    b = 3.0 + np.abs(a) + np.abs(c)
    d = rng.standard_normal((1, n))
    (ra, rb, rc, rd_), _ = run_tiled_pcr(a[0], b[0], c[0], d[0], k)
    ref = pcr_sweep(a, b, c, d, k)
    for got, exp in zip((ra, rb, rc, rd_), ref):
        assert np.allclose(got, exp[0], rtol=1e-10, atol=1e-12)
