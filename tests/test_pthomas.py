"""p-Thomas on interleaved subsystems: equivalence, masking, lengths."""

import numpy as np
import pytest

from repro.core.pcr import pcr_sweep
from repro.core.pthomas import pthomas_solve_interleaved, subsystem_lengths
from repro.core.thomas import thomas_solve

from .conftest import make_batch, max_err, reference_solve


@pytest.mark.parametrize("n,k", [(16, 1), (16, 2), (64, 3), (100, 2), (37, 3), (129, 4)])
def test_solves_after_pcr(n, k):
    a, b, c, d = make_batch(3, n, seed=n * k)
    x_ref = reference_solve(a, b, c, d)
    ra, rb, rc, rd = pcr_sweep(a, b, c, d, k)
    x = pthomas_solve_interleaved(ra, rb, rc, rd, k)
    assert max_err(x, x_ref) < 1e-10


def test_k_zero_is_plain_thomas():
    from repro.core.thomas import thomas_solve_batch

    a, b, c, d = make_batch(4, 50, seed=1)
    x = pthomas_solve_interleaved(a, b, c, d, 0)
    assert np.array_equal(x, thomas_solve_batch(a, b, c, d, check=False))


def test_matches_per_subsystem_thomas():
    """Each interleaved subsystem solved independently gives the same."""
    n, k = 40, 2
    a, b, c, d = make_batch(1, n, seed=9)
    ra, rb, rc, rd = pcr_sweep(a, b, c, d, k)
    x = pthomas_solve_interleaved(ra, rb, rc, rd, k)
    g = 1 << k
    for j in range(g):
        aa = ra[0, j::g].copy()
        aa[0] = 0.0
        cc = rc[0, j::g].copy()
        cc[-1] = 0.0
        xs = thomas_solve(aa, rb[0, j::g], cc, rd[0, j::g], check=False)
        assert np.allclose(xs, x[0, j::g], atol=1e-12)


def test_g_at_least_n_divides_rows():
    """When 2^k >= n each row is its own system: x = d / b."""
    a, b, c, d = make_batch(2, 8, seed=3)
    ra, rb, rc, rd = pcr_sweep(a, b, c, d, 3)  # g = 8 = n
    x = pthomas_solve_interleaved(ra, rb, rc, rd, 3)
    assert np.allclose(x, rd / rb)
    assert max_err(x, reference_solve(a, b, c, d)) < 1e-10


def test_subsystem_lengths_cover_all_rows():
    for n in (16, 17, 100, 255):
        for k in (1, 2, 3, 4):
            lens = subsystem_lengths(n, k)
            assert lens.sum() == n
            assert lens.max() - lens.min() <= 1


def test_subsystem_lengths_values():
    assert list(subsystem_lengths(10, 2)) == [3, 3, 2, 2]
    assert list(subsystem_lengths(8, 2)) == [2, 2, 2, 2]


@pytest.mark.parametrize("n", [15, 17, 31, 33])  # non-divisible sizes
def test_non_divisible_sizes(n):
    k = 3
    a, b, c, d = make_batch(2, n, seed=n)
    ra, rb, rc, rd = pcr_sweep(a, b, c, d, k)
    x = pthomas_solve_interleaved(ra, rb, rc, rd, k)
    assert max_err(x, reference_solve(a, b, c, d)) < 1e-10


def test_float32_dtype_preserved():
    a, b, c, d = make_batch(2, 32, dtype=np.float32, seed=5)
    ra, rb, rc, rd = pcr_sweep(a, b, c, d, 2)
    x = pthomas_solve_interleaved(ra, rb, rc, rd, 2)
    assert x.dtype == np.float32
