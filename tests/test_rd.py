"""Recursive doubling: correctness, scan internals, normalization."""

import numpy as np
import pytest

from repro.core.rd import _prefix_affine, _prefix_mobius, rd_solve, rd_solve_batch

from .conftest import make_batch, make_system, max_err, reference_solve


@pytest.mark.parametrize("n", [1, 2, 3, 5, 8, 13, 16, 31, 64, 100, 257, 1000])
def test_matches_reference(n):
    a, b, c, d = make_system(n, seed=n * 7)
    x = rd_solve(a, b, c, d)
    assert max_err(x, reference_solve(a, b, c, d)[0]) < 1e-9


@pytest.mark.parametrize("m,n", [(3, 33), (8, 128), (20, 17)])
def test_batch_matches_reference(m, n):
    a, b, c, d = make_batch(m, n, seed=m ^ n)
    x = rd_solve_batch(a, b, c, d)
    assert max_err(x, reference_solve(a, b, c, d)) < 1e-9


def test_prefix_affine_matches_sequential():
    rng = np.random.default_rng(0)
    n = 37
    alpha = rng.uniform(-0.9, 0.9, (2, n))
    beta = rng.standard_normal((2, n))
    a2, b2 = _prefix_affine(alpha.copy(), beta.copy())
    # sequential recurrence y_i = alpha_i y_{i-1} + beta_i, y_{-1} = 0
    y = np.zeros((2, n))
    acc = np.zeros(2)
    for i in range(n):
        acc = alpha[:, i] * acc + beta[:, i]
        y[:, i] = acc
    assert np.allclose(b2, y, atol=1e-12)


def test_prefix_mobius_matches_sequential():
    rng = np.random.default_rng(1)
    n = 29
    a, b, c, d = make_batch(1, n, seed=2)
    p = np.zeros((1, n))
    q = c.copy()
    r = -a.copy()
    s = b.copy()
    p, q, r, s = _prefix_mobius(p, q, r, s)
    cp_scan = (q / s)[0]
    cp_seq = np.zeros(n)
    cp_seq[0] = c[0, 0] / b[0, 0]
    for i in range(1, n):
        cp_seq[i] = c[0, i] / (b[0, i] - a[0, i] * cp_seq[i - 1])
    assert np.allclose(cp_scan, cp_seq, atol=1e-12)


def test_no_overflow_on_long_systems():
    """The per-level matrix normalization must keep values finite."""
    a, b, c, d = make_batch(1, 1 << 14, seed=3, dominance=5.0)
    x = rd_solve_batch(a, b, c, d)
    assert np.all(np.isfinite(x))
    assert max_err(x, reference_solve(a, b, c, d)) < 1e-8


def test_float32():
    a, b, c, d = make_batch(2, 64, dtype=np.float32, seed=4)
    x = rd_solve_batch(a, b, c, d)
    assert x.dtype == np.float32
    assert max_err(x, reference_solve(a, b, c, d)) < 5e-3


def test_agrees_with_pcr():
    from repro.core.pcr import pcr_solve_batch

    a, b, c, d = make_batch(4, 200, seed=5)
    assert max_err(rd_solve_batch(a, b, c, d), pcr_solve_batch(a, b, c, d)) < 1e-9
