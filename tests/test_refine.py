"""Mixed-precision iterative refinement (the ref [10] technique)."""

import numpy as np
import pytest

from repro.core.refine import solve_mixed_precision

from .conftest import make_batch, max_err, reference_solve


def test_reaches_fp64_accuracy():
    a, b, c, d = make_batch(4, 512, seed=1)
    res = solve_mixed_precision(a, b, c, d)
    assert res.converged
    assert max_err(res.x, reference_solve(a, b, c, d)) < 1e-11


def test_beats_plain_fp32_solve():
    """Refinement must recover the ~7 digits fp32 throws away."""
    from repro.core.hybrid import HybridSolver

    a, b, c, d = make_batch(4, 1024, seed=2)
    ref = reference_solve(a, b, c, d)
    x32 = HybridSolver().solve_batch(
        a.astype(np.float32), b.astype(np.float32),
        c.astype(np.float32), d.astype(np.float32),
    ).astype(np.float64)
    res = solve_mixed_precision(a, b, c, d)
    assert max_err(res.x, ref) < 1e-4 * max(max_err(x32, ref), 1e-30)


def test_residual_history_contracts():
    a, b, c, d = make_batch(2, 256, seed=3)
    res = solve_mixed_precision(a, b, c, d, rtol=0.0, max_iter=3)
    hist = res.residuals
    assert len(hist) >= 2
    # each pass contracts the residual until fp64 round-off bottoms out
    assert hist[1] < hist[0]
    assert hist[-1] < 1e-13


def test_few_iterations_needed():
    """Dominant systems converge in 1-3 corrections."""
    a, b, c, d = make_batch(8, 2048, seed=4)
    res = solve_mixed_precision(a, b, c, d)
    assert res.iterations <= 3
    assert res.converged


def test_explicit_k_forwarded():
    a, b, c, d = make_batch(2, 128, seed=5)
    res = solve_mixed_precision(a, b, c, d, k=3)
    assert res.converged
    assert max_err(res.x, reference_solve(a, b, c, d)) < 1e-11


def test_iteration_cap_respected():
    a, b, c, d = make_batch(1, 64, seed=6)
    res = solve_mixed_precision(a, b, c, d, rtol=0.0, max_iter=2)
    assert res.iterations <= 2
    assert len(res.residuals) <= 3


def test_validation_applied():
    a, b, c, d = make_batch(1, 8, seed=7)
    b = b.copy()
    b[0, 3] = 0.0
    with pytest.raises(ValueError, match="main diagonal"):
        solve_mixed_precision(a, b, c, d)


def test_poisson_hard_case():
    """Weak dominance: refinement still reaches near-fp64 residuals."""
    from repro.workloads.generators import poisson1d_batch

    a, b, c, d = poisson1d_batch(2, 512, seed=8)
    res = solve_mixed_precision(a, b, c, d, rtol=1e-10, max_iter=8)
    assert res.residuals[-1] < 1e-10
