"""Roofline analysis of the kernel family."""

import pytest

from repro.analysis.roofline import kernel_survey, ridge_intensity, roofline_point
from repro.gpusim.counters import KernelCounters
from repro.gpusim.device import GTX480, TESLA_C2050
from repro.gpusim.memory import MemoryTraffic
from repro.kernels.pthomas_kernel import pthomas_counters


def test_ridge_point_values():
    # GTX480 fp64: 84 GFLOP/s over ~115 GB/s -> ridge ~ 0.73 flops/byte
    r64 = ridge_intensity(GTX480, 8)
    assert 0.5 < r64 < 1.0
    # fp32 ridge is 8x higher (GeForce 1/8 fp64)
    assert ridge_intensity(GTX480, 4) == pytest.approx(8 * r64)
    # Tesla's full-rate fp64 raises the fp64 ridge
    assert ridge_intensity(TESLA_C2050, 8) > r64


def test_pthomas_is_memory_bound():
    c = pthomas_counters(4096, 512, 8)
    pt = roofline_point(c, 8)
    assert pt.bound == "memory"
    assert pt.intensity < 0.5
    assert pt.attainable_gflops < pt.peak_gflops


def test_attainable_respects_both_ceilings():
    t = MemoryTraffic()
    t.add_load(128, 1)
    dense = KernelCounters(name="dense", flops=10**9, traffic=t)
    pt = roofline_point(dense, 8)
    assert pt.bound == "compute"
    assert pt.attainable_gflops == pytest.approx(pt.peak_gflops)


def test_roofline_rejects_trafficless_kernel():
    with pytest.raises(ValueError, match="bus traffic"):
        roofline_point(KernelCounters(name="x", flops=10), 8)


def test_survey_structure_and_story():
    pts = {p.name: p for p in kernel_survey()}
    assert len(pts) == 4
    inter = pts["p-Thomas (interleaved)"]
    contig = pts["p-Thomas (contiguous)"]
    tiled = pts["tiled PCR (k=6)"]
    fused = pts["fused hybrid (k=6)"]
    # uncoalesced layout slashes arithmetic intensity (same flops, more bus)
    assert contig.intensity < inter.intensity / 5
    # fusion raises the hybrid's intensity above the PCR stage alone
    assert fused.intensity > tiled.intensity
    # both p-Thomas variants are memory-bound
    assert inter.bound == "memory" and contig.bound == "memory"


def test_efficiency_ceiling_bounded():
    for p in kernel_survey():
        assert 0 < p.efficiency_ceiling <= 1.0
