"""Algorithm-selection surface and heuristic regret."""

import pytest

from repro.analysis.selection_map import (
    SelectionCell,
    heuristic_regret,
    selection_map,
)
from repro.gpusim.device import GTX480


@pytest.fixture(scope="module")
def surface():
    return selection_map()


def test_surface_covers_grid(surface):
    assert len(surface) == 8 * 5
    assert all(isinstance(c, SelectionCell) for c in surface)


def test_k0_plateau_at_large_m(surface):
    """Saturated machine: the optimum is pure p-Thomas."""
    for c in surface:
        if c.m >= 4096:
            assert c.best_k == 0, (c.m, c.n, c.best_k)


def test_k_rises_as_m_shrinks(surface):
    """At fixed big N, fewer systems -> more PCR steps."""
    n = 65536
    ks = {c.m: c.best_k for c in surface if c.n == n}
    assert ks[1] >= ks[16] >= ks[256] >= ks[4096]
    assert ks[1] >= 6


def test_best_k_never_exceeds_smem_cap(surface):
    from repro.core.window import max_k_for_shared_memory

    cap = max_k_for_shared_memory(GTX480.max_shared_mem_per_block)
    assert all(c.best_k <= cap for c in surface)


def test_heuristic_regret_small(surface):
    """The paper's empirical table sits near the model optimum across
    the whole plane — its tuning effort 'can be quickly amortized'."""
    stats = heuristic_regret(surface)
    assert stats["worst"] < 1.5
    assert stats["median"] < 1.1
    assert stats["cells_within_25pct"] > 0.9
    assert stats["exact_matches"] > 0.5


def test_regret_at_least_one(surface):
    assert all(c.regret >= 0.999 for c in surface)


def test_small_smem_device_clips_surface():
    tiny = GTX480.with_overrides(
        name="tiny", shared_mem_per_sm=16 * 1024,
        max_shared_mem_per_block=16 * 1024,
    )
    cells = selection_map(m_values=(1, 16), n_values=(65536,), device=tiny)
    assert all(c.best_k <= 7 for c in cells)
    assert all(c.heuristic_k <= 7 for c in cells)
