"""Service tier: coalescing, bitwise scatter, stats, backpressure.

No pytest-asyncio in the environment: every async test runs through
``asyncio.run(asyncio.wait_for(...))`` with a hard timeout so an
event-loop hang fails the test instead of wedging the suite.
"""

from __future__ import annotations

import asyncio
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.backends import solve_via
from repro.service import (
    ServiceConfig,
    ServiceOverloaded,
    SolveService,
    SyncSolveClient,
)
from repro.workloads import (
    random_batch,
    random_block_batch,
    random_penta_batch,
    shared_matrix_traffic,
    small_request_traffic,
)

TIMEOUT = 120.0


def run(coro):
    """Drive a coroutine with a hang guard."""
    return asyncio.run(asyncio.wait_for(coro, TIMEOUT))


def fragments_of(arrays, bounds):
    """Split each (M, ...) array at ``bounds`` row offsets."""
    edges = [0, *bounds, arrays[0].shape[0]]
    return [
        tuple(arr[lo:hi] for arr in arrays)
        for lo, hi in zip(edges[:-1], edges[1:])
    ]


# ---------------------------------------------------------------------------
# coalescing + bitwise identity
# ---------------------------------------------------------------------------


def test_compatible_fragments_coalesce_into_one_dispatch():
    frags = small_request_traffic(16, 4, 128, seed=0)
    a = np.concatenate([f[1][0] for f in frags], axis=0)
    b = np.concatenate([f[1][1] for f in frags], axis=0)
    c = np.concatenate([f[1][2] for f in frags], axis=0)
    d = np.concatenate([f[1][3] for f in frags], axis=0)
    ref = repro.solve_batch(a, b, c, d, k=0)

    async def main():
        async with SolveService(ServiceConfig(max_wait_us=500.0)) as svc:
            xs = await asyncio.gather(*[
                svc.submit(fa, fb, fc, fd, tenant=t)
                for t, (fa, fb, fc, fd) in frags
            ])
            return xs, svc.stats.describe()

    xs, stats = run(main())
    assert stats["dispatches"] == 1
    assert stats["dispatched_rows"] == 64
    for i, x in enumerate(xs):
        assert np.array_equal(x, ref[4 * i : 4 * (i + 1)])


def test_size_flush_splits_at_max_batch_rows():
    frags = small_request_traffic(8, 4, 64, seed=1)

    async def main():
        config = ServiceConfig(max_batch_rows=16, max_wait_us=500.0)
        async with SolveService(config) as svc:
            await asyncio.gather(*[
                svc.submit(*f[1]) for f in frags
            ])
            return svc.stats.describe()

    stats = run(main())
    assert stats["dispatches"] == 2
    assert stats["flushes"]["size"] == 2
    assert stats["max_batch_rows"] <= 16


def test_incompatible_shapes_group_separately():
    a1 = random_batch(4, 64, seed=2)
    a2 = random_batch(4, 128, seed=3)

    async def main():
        async with SolveService(ServiceConfig(max_wait_us=500.0)) as svc:
            x1, x2 = await asyncio.gather(
                svc.submit(*a1), svc.submit(*a2)
            )
            return x1, x2, svc.stats.describe()

    x1, x2, stats = run(main())
    assert stats["dispatches"] == 2
    assert np.array_equal(x1, repro.solve_batch(*a1, k=0))
    assert np.array_equal(x2, repro.solve_batch(*a2, k=0))


def test_pinned_k_group_keeps_callers_k():
    frags = small_request_traffic(4, 8, 256, seed=4)

    async def main():
        async with SolveService(ServiceConfig(max_wait_us=500.0)) as svc:
            xs = await asyncio.gather(*[
                svc.submit(*f[1], k=2) for f in frags
            ])
            return xs, svc.stats.describe()

    xs, stats = run(main())
    assert stats["dispatches"] == 1
    a = np.concatenate([f[1][0] for f in frags], axis=0)
    b = np.concatenate([f[1][1] for f in frags], axis=0)
    c = np.concatenate([f[1][2] for f in frags], axis=0)
    d = np.concatenate([f[1][3] for f in frags], axis=0)
    ref = repro.solve_batch(a, b, c, d, k=2)
    for i, x in enumerate(xs):
        assert np.array_equal(x, ref[8 * i : 8 * (i + 1)])


def test_hybrid_options_pass_through_solo():
    a, b, c, d = random_batch(8, 256, seed=5)

    async def main():
        async with SolveService(ServiceConfig(max_wait_us=500.0)) as svc:
            x = await svc.submit(a, b, c, d, fuse=True)
            return x, svc.stats.describe()

    x, stats = run(main())
    assert stats["flushes"]["solo"] == 1
    assert np.array_equal(x, repro.solve_batch(a, b, c, d, fuse=True))


def test_periodic_fragments_coalesce_bitwise():
    rng = np.random.default_rng(6)
    m, n = 12, 64
    a = rng.standard_normal((m, n))
    c = rng.standard_normal((m, n))
    b = 3.0 + np.abs(a) + np.abs(c)
    d = rng.standard_normal((m, n))
    ref = repro.solve_periodic_batch(a, b, c, d, k=0)

    async def main():
        async with SolveService(ServiceConfig(max_wait_us=500.0)) as svc:
            xs = await asyncio.gather(*[
                svc.submit(a[i : i + 4], b[i : i + 4], c[i : i + 4],
                           d[i : i + 4], periodic=True)
                for i in range(0, m, 4)
            ])
            return xs, svc.stats.describe()

    xs, stats = run(main())
    assert stats["dispatches"] == 1
    for i, x in enumerate(xs):
        assert np.array_equal(x, ref[4 * i : 4 * (i + 1)])


def test_out_argument_receives_fragment():
    a, b, c, d = random_batch(4, 64, seed=7)
    out = np.empty_like(d)

    async def main():
        async with SolveService(ServiceConfig(max_wait_us=500.0)) as svc:
            other = random_batch(4, 64, seed=8)
            x, _ = await asyncio.gather(
                svc.submit(a, b, c, d, out=out),
                svc.submit(*other),
            )
            return x

    x = run(main())
    assert x is out
    assert np.array_equal(out, repro.solve_batch(a, b, c, d, k=0))


# ---------------------------------------------------------------------------
# shared-factorization digest path
# ---------------------------------------------------------------------------


def test_shared_matrix_requests_share_one_factorization():
    (a, b, c), ds = shared_matrix_traffic(8, 4, 128, seed=9)
    ref = [repro.solve_batch(a, b, c, d, k=0, fingerprint=False)
           for _, d in ds]

    async def main():
        async with SolveService(ServiceConfig(max_wait_us=500.0)) as svc:
            xs = await asyncio.gather(*[
                svc.submit(a, b, c, d, tenant=t, fingerprint=True)
                for t, d in ds
            ])
            return xs, svc.stats.describe(), svc.last_trace("tenant-0")

    xs, stats, trace = run(main())
    assert stats["dispatches"] == 1
    assert stats["shared_factorizations"] == 1
    assert trace is not None and trace.rhs_only
    for x, r in zip(xs, ref):
        assert np.array_equal(x, r)


# ---------------------------------------------------------------------------
# stats, traces, backpressure
# ---------------------------------------------------------------------------


def test_per_tenant_stats_and_last_trace():
    frags = small_request_traffic(8, 4, 64, tenants=2, seed=10)

    async def main():
        async with SolveService(ServiceConfig(max_wait_us=500.0)) as svc:
            await asyncio.gather(*[
                svc.submit(*batch, tenant=t) for t, batch in frags
            ])
            return svc.stats.describe(), svc.last_trace("tenant-1")

    stats, trace = run(main())
    tenants = {t["tenant"]: t for t in stats["tenants"]}
    assert set(tenants) == {"tenant-0", "tenant-1"}
    for t in tenants.values():
        assert t["submitted"] == t["delivered"] == 4
        assert t["rows"] == 16
        assert t["latency_ms"]["p99"] >= t["latency_ms"]["p50"] >= 0.0
    assert trace is not None
    assert trace.m == 32  # the tenant's trace is the aggregate dispatch


def test_admission_control_sheds_past_max_pending_rows():
    frags = small_request_traffic(3, 8, 64, seed=11)

    async def main():
        config = ServiceConfig(max_pending_rows=16, max_wait_us=50_000.0)
        async with SolveService(config) as svc:
            f0 = svc.submit_nowait(*frags[0][1])
            f1 = svc.submit_nowait(*frags[1][1])
            with pytest.raises(ServiceOverloaded) as exc:
                svc.submit_nowait(*frags[2][1])
            assert exc.value.pending_rows == 16
            assert exc.value.rows == 8
            await asyncio.gather(f0, f1)
            return svc.stats.describe()

    stats = run(main())
    shed = sum(t["shed"] for t in stats["tenants"])
    assert shed == 1
    delivered = sum(t["delivered"] for t in stats["tenants"])
    assert delivered == 2


def test_submit_after_close_raises():
    a, b, c, d = random_batch(2, 32, seed=12)

    async def main():
        svc = SolveService(ServiceConfig(max_wait_us=500.0))
        async with svc:
            await svc.submit(a, b, c, d)
        with pytest.raises(RuntimeError):
            svc.submit_nowait(a, b, c, d)

    run(main())


def test_close_flushes_pending_buckets():
    a, b, c, d = random_batch(4, 64, seed=13)

    async def main():
        svc = SolveService(ServiceConfig(max_wait_us=60_000_000.0))
        async with svc:
            fut = svc.submit_nowait(a, b, c, d)
            # the window is an hour; close() must drain it now
        assert fut.done()
        return fut.result(), svc.stats.describe()

    x, stats = run(main())
    assert stats["flushes"]["close"] == 1
    assert np.array_equal(x, repro.solve_batch(a, b, c, d, k=0))


def test_invalid_input_raises_at_submit_not_in_future():
    async def main():
        async with SolveService(ServiceConfig(max_wait_us=500.0)) as svc:
            with pytest.raises(ValueError):
                svc.submit_nowait(
                    np.ones((2, 8)), np.ones((2, 8)),
                    np.ones((2, 8)), np.ones((3, 8)),
                )

    run(main())


# ---------------------------------------------------------------------------
# sync adapter
# ---------------------------------------------------------------------------


def test_sync_client_from_worker_threads():
    frags = small_request_traffic(8, 4, 64, seed=14)
    results: dict = {}

    with SyncSolveClient(ServiceConfig(max_wait_us=2000.0)) as client:
        def worker(i, batch):
            results[i] = client.solve(*batch, timeout=TIMEOUT)

        threads = [
            threading.Thread(target=worker, args=(i, batch))
            for i, (_, batch) in enumerate(frags)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(TIMEOUT)
        stats = client.describe()

    assert len(results) == 8
    for i, (_, (a, b, c, d)) in enumerate(frags):
        assert np.array_equal(results[i], repro.solve_batch(a, b, c, d, k=0))
    assert stats["dispatches"] >= 1


def test_sync_client_close_is_idempotent():
    client = SyncSolveClient(ServiceConfig(max_wait_us=500.0))
    a, b, c, d = random_batch(2, 32, seed=15)
    x = client.solve(a, b, c, d, timeout=TIMEOUT)
    assert np.array_equal(x, repro.solve_batch(a, b, c, d, k=0))
    client.close()
    client.close()


# ---------------------------------------------------------------------------
# property: any partition scatter-gathers bitwise-identically
# ---------------------------------------------------------------------------


@settings(max_examples=12, deadline=None)
@given(
    kind=st.sampled_from(["plain", "periodic", "penta", "block"]),
    cuts=st.lists(st.integers(min_value=1, max_value=11),
                  max_size=3, unique=True),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_any_partition_matches_monolithic_solve(kind, cuts, seed):
    m, n = 12, 32
    bounds = sorted(cuts)
    if kind == "plain":
        arrays = random_batch(m, n, seed=seed)
        ref = repro.solve_batch(*arrays, k=0)
        submit_args = [
            (frag, {}) for frag in fragments_of(arrays, bounds)
        ]
    elif kind == "periodic":
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((m, n))
        c = rng.standard_normal((m, n))
        b = 3.0 + np.abs(a) + np.abs(c)
        d = rng.standard_normal((m, n))
        ref = repro.solve_periodic_batch(a, b, c, d, k=0)
        submit_args = [
            (frag, {"periodic": True})
            for frag in fragments_of((a, b, c, d), bounds)
        ]
    elif kind == "penta":
        e, a, b, c, f, d = random_penta_batch(m, n, seed=seed)
        ref, _ = solve_via(a, b, c, d, e=e, f=f)
        submit_args = [
            ((fa, fb, fc, fd), {"e": fe, "f": ff})
            for fe, fa, fb, fc, ff, fd
            in fragments_of((e, a, b, c, f, d), bounds)
        ]
    else:
        A, B, C, d = random_block_batch(m, n, block_size=2, seed=seed)
        ref, _ = solve_via(A, B, C, d)
        submit_args = [
            (frag, {}) for frag in fragments_of((A, B, C, d), bounds)
        ]

    async def main():
        async with SolveService(ServiceConfig(max_wait_us=500.0)) as svc:
            return await asyncio.gather(*[
                svc.submit(*args, **kwargs) for args, kwargs in submit_args
            ])

    xs = run(main())
    assert np.array_equal(np.concatenate(xs, axis=0), ref)
