"""Bound sessions: bind once, step many — bitwise against one-shot.

The bind/execute split promises that a :class:`BoundSolve` (or any of
its siblings: the generic ``PerStepSession``, the distributed session)
is *pure orchestration*: stepping a sequence of right-hand sides
through one bound session produces, step for step, the **bitwise**
result of independent one-shot solves wherever the one-shot path makes
that promise (every ``k = 0`` route, all banded routes).  These tests
pin that contract across the four system kinds and the backend
surface — engine, threaded, the generic per-step fallback, the
service's shared-window sessions, and the distributed pipeline — plus
the transposed-layout ``step_t`` fast path and the session lifecycle.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.backends import bind_via, solve_via
from repro.backends.base import PerStepSession
from repro.engine.session import BoundSolve
from repro.workloads.generators import (
    random_batch,
    random_block_batch,
    random_penta_batch,
)

KINDS = ("plain", "cyclic", "penta", "block")


def _cyclic_batch(m, n, seed):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, n))
    c = rng.standard_normal((m, n))
    b = 4.0 + np.abs(a) + np.abs(c)
    d = rng.standard_normal((m, n))
    return a, b, c, d


def _make(kind, seed, backend="engine", **opts):
    """(session, one_shot(d), fresh_d()) for one system kind."""
    rng = np.random.default_rng(seed + 1000)
    if kind == "plain":
        a, b, c, d = random_batch(4, 40, seed=seed)
        # fingerprinting negotiates only against prepared-capable
        # backends; bindless ones take the per-step-dispatch session
        fp = backend in ("engine", "threaded")
        session = bind_via(
            a, b, c, d, backend=backend, k=0, fingerprint=fp, **opts
        )
        one = lambda dd: solve_via(a, b, c, dd, backend=backend, k=0)[0]
        fresh = lambda: rng.standard_normal(d.shape)
    elif kind == "cyclic":
        a, b, c, d = _cyclic_batch(4, 40, seed)
        session = bind_via(
            a, b, c, d,
            backend=backend, periodic=True, k=0, fingerprint=True, **opts
        )
        one = lambda dd: solve_via(
            a, b, c, dd, backend=backend, periodic=True, k=0
        )[0]
        fresh = lambda: rng.standard_normal(d.shape)
    elif kind == "penta":
        e, a, b, c, f, d = random_penta_batch(4, 40, seed=seed)
        session = bind_via(
            a, b, c, d, e=e, f=f, backend=backend, fingerprint=True, **opts
        )
        one = lambda dd: solve_via(
            a, b, c, dd, e=e, f=f, backend=backend
        )[0]
        fresh = lambda: rng.standard_normal(d.shape)
    else:  # block
        A, B, C, d = random_block_batch(3, 12, block_size=2, seed=seed)
        session = bind_via(
            A, B, C, d, backend=backend, fingerprint=True, **opts
        )
        one = lambda dd: solve_via(A, B, C, dd, backend=backend)[0]
        fresh = lambda: rng.standard_normal(d.shape)
    return session, one, fresh


# ---------------------------------------------------------------------------
# the contract: step sequences == one-shot solves, bitwise
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("kind", KINDS)
@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_step_sequence_matches_one_shot_bitwise(kind, seed):
    session, one_shot, fresh_d = _make(kind, seed)
    with session:
        assert isinstance(session, BoundSolve)
        for step in range(3):
            d = fresh_d()
            x = session.step(d)
            assert np.array_equal(x, one_shot(d)), (kind, seed, step)
        assert session.steps == 3


@pytest.mark.parametrize("backend", ("engine", "threaded", "numpy", "gpusim"))
def test_plain_sessions_match_one_shot_on_every_backend(backend):
    session, one_shot, fresh_d = _make("plain", seed=17, backend=backend)
    with session:
        for _ in range(3):
            d = fresh_d()
            assert np.array_equal(session.step(d), one_shot(d))


def test_session_modes_and_buffer_ownership():
    # the k=0 fingerprinted bind lands on the RHS-only fast path…
    session, _, fresh_d = _make("plain", seed=3)
    assert session.describe()["mode"] == "rhs"
    x1 = session.step(fresh_d())
    assert session.step(fresh_d()) is x1  # session-owned buffer, reused
    out = np.empty_like(x1)
    assert session.step(fresh_d(), out=out) is out
    session.close()
    with pytest.raises(RuntimeError, match="closed"):
        session.step(fresh_d())
    session.close()  # idempotent

    # …and an unlicensed bind (fingerprinting off) steps the full plan,
    # still bitwise on the k=0 route
    a, b, c, d = random_batch(4, 40, seed=3)
    with bind_via(
        a, b, c, d, backend="engine", k=0, fingerprint=False
    ) as full:
        assert full.describe()["mode"] == "full"
        dd = np.random.default_rng(9).standard_normal(d.shape)
        assert np.array_equal(
            full.step(dd), solve_via(a, b, c, dd, backend="engine", k=0)[0]
        )


# ---------------------------------------------------------------------------
# step_t: the transposed-layout hot path
# ---------------------------------------------------------------------------


def test_step_t_fast_path_matches_step_bitwise():
    session, one_shot, fresh_d = _make("plain", seed=29)
    with session:
        assert session.plan.uses_thomas and session.mode == "rhs"
        for _ in range(3):
            d = fresh_d()
            x = one_shot(d)
            xt = session.step_t(np.ascontiguousarray(d.T))
            assert np.array_equal(xt, x.T)
        # out_t is honored, and may alias the input (the forward sweep
        # consumes dt before the backward sweep writes out_t)
        d = fresh_d()
        dt = np.ascontiguousarray(d.T)
        x = one_shot(d)
        assert session.step_t(dt, out_t=dt) is dt
        assert np.array_equal(dt, x.T)
        assert session.steps == 4


def test_step_t_fallback_modes_match_step():
    # cyclic sessions have no transposed sweep: step_t canonicalizes
    # through step() and must agree bitwise
    session, one_shot, fresh_d = _make("cyclic", seed=31)
    with session:
        d = fresh_d()
        x = one_shot(d)
        assert np.array_equal(session.step_t(np.ascontiguousarray(d.T)), x.T)
        assert session.steps == 1  # the fallback counts once, not twice


def test_step_t_rejects_block_sessions_and_bad_shapes():
    session, _, fresh_d = _make("block", seed=5)
    with session:
        with pytest.raises(ValueError, match="block"):
            session.step_t(np.zeros((2, 2)))
    session, _, _ = _make("plain", seed=5)
    with session:
        with pytest.raises(ValueError, match="shape"):
            session.step_t(np.zeros((3, 3)))


# ---------------------------------------------------------------------------
# bind_via routing + the generic per-step fallback
# ---------------------------------------------------------------------------


def test_bind_via_returns_native_sessions_with_pinned_provenance():
    a, b, c, d = random_batch(4, 40, seed=41)
    with bind_via(a, b, c, d, backend="engine") as session:
        assert isinstance(session, BoundSolve)
        decision = session.request.decision
        assert decision is not None and decision.router == "explicit"
        assert decision.chosen == "engine"
        # every instrumented step carries the bind-time decision
        outcome = session.step_once(d)
        assert outcome.trace.decision is decision

    with bind_via(a, b, c, d, backend="auto") as routed:
        decision = routed.request.decision
        assert decision is not None and decision.router == "static"
        assert len(decision.candidates) > 1


def test_per_step_fallback_session_for_bindless_backends():
    a, b, c, d = random_batch(4, 40, seed=43)
    session = bind_via(a, b, c, d, backend="numpy")
    assert isinstance(session, PerStepSession)
    desc = session.describe()
    assert desc["mode"] == "dispatch" and desc["backend"] == "numpy"
    rng = np.random.default_rng(43)
    for _ in range(2):
        dd = rng.standard_normal(d.shape)
        assert np.array_equal(
            session.step(dd), solve_via(a, b, c, dd, backend="numpy")[0]
        )
        assert np.array_equal(
            session.step_t(np.ascontiguousarray(dd.T)),
            solve_via(a, b, c, dd, backend="numpy")[0].T,
        )
    assert session.steps == 4
    session.close()
    with pytest.raises(RuntimeError, match="closed"):
        session.step(d)


# ---------------------------------------------------------------------------
# PreparedPlan rides the same sessions
# ---------------------------------------------------------------------------


def test_prepared_handle_bind_exposes_the_cached_session():
    a, b, c, d = random_batch(4, 48, seed=47)
    handle = repro.prepare(a, b, c, k=0)
    session = handle.bind()
    assert isinstance(session, BoundSolve)
    assert handle.bind() is session  # cached per configuration
    rng = np.random.default_rng(47)
    dd = rng.standard_normal(d.shape)
    assert np.array_equal(session.step(dd).copy(), handle.solve(dd))
    handle.close()
    assert session.closed
    # the handle remains usable: the next solve binds afresh
    assert np.array_equal(handle.solve(dd), handle.bind().step(dd))
    handle.close()


# ---------------------------------------------------------------------------
# the service's shared-window sessions
# ---------------------------------------------------------------------------


def test_service_reuses_bound_sessions_across_windows():
    from repro.service import ServiceConfig, SolveService

    a, b, c, _ = random_batch(3, 32, seed=53)
    rng = np.random.default_rng(53)

    async def main():
        async with SolveService(ServiceConfig(max_wait_us=500.0)) as svc:
            rounds = []
            for _ in range(3):
                d = rng.standard_normal((3, 32))
                xs = await asyncio.gather(
                    *(
                        svc.submit(a, b, c, d, fingerprint=True)
                        for _ in range(2)
                    )
                )
                rounds.append((d, xs))
            return rounds, svc.describe()

    rounds, desc = asyncio.run(asyncio.wait_for(main(), 120.0))
    for d, xs in rounds:
        ref = solve_via(a, b, c, d, backend="numpy")[0]
        for x in xs:
            np.testing.assert_allclose(x, ref, rtol=1e-10, atol=1e-12)
    # identical windows land on one cached bound session
    assert desc["bound_sessions"] >= 1


# ---------------------------------------------------------------------------
# the distributed session
# ---------------------------------------------------------------------------


def test_distributed_session_steps_match_one_shot_and_survive_epochs():
    from repro.backends.request import SolveRequest
    from repro.distributed import partitioned_solve_reference
    from repro.distributed.backend import (
        DistributedBackend,
        DistributedBoundSolve,
    )

    a, b, c, d = random_batch(3, 64, seed=59)
    backend = DistributedBackend(timeout_s=60.0)
    session = backend.bind(SolveRequest.build(a, b, c, d, ranks=2))
    assert isinstance(session, DistributedBoundSolve)
    assert session.describe()["mode"] == "distributed"
    rng = np.random.default_rng(59)
    try:
        d1 = rng.standard_normal(d.shape)
        x1 = session.step(d1).copy()
        assert np.array_equal(x1, partitioned_solve_reference(a, b, c, d1, 2))

        # another solve scatters different coefficients into the shared
        # arenas (the epoch moves); the session must re-ship, not trust
        # stale slabs
        a2, b2, c2, d2 = random_batch(3, 64, seed=61)
        backend.solve_batch(a2, b2, c2, d2, ranks=2)

        d3 = rng.standard_normal(d.shape)
        x3 = session.step(d3)
        assert np.array_equal(x3, partitioned_solve_reference(a, b, c, d3, 2))

        # transposed-layout step agrees with the straight step
        d4 = rng.standard_normal(d.shape)
        xt = session.step_t(np.ascontiguousarray(d4.T))
        assert np.array_equal(
            xt.T, partitioned_solve_reference(a, b, c, d4, 2)
        )
        assert session.steps == 3
    finally:
        session.close()
    with pytest.raises(RuntimeError, match="closed"):
        session.step(d)


def test_distributed_bind_at_one_rank_is_the_engine_anchor():
    from repro.backends.request import SolveRequest
    from repro.distributed.backend import DistributedBackend

    a, b, c, d = random_batch(3, 24, seed=67)
    backend = DistributedBackend()
    with backend.bind(SolveRequest.build(a, b, c, d, ranks=1)) as session:
        assert isinstance(session, BoundSolve)
        x = session.step(d)
        assert np.array_equal(
            x, repro.solve_batch(a, b, c, d, backend="engine", k=0)
        )
