"""Top-level public API: solve / solve_batch."""

import numpy as np
import pytest

import repro
from repro.core.solver import ALGORITHMS, solve, solve_batch

from .conftest import make_batch, make_system, max_err, reference_solve


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_all_algorithms_agree(algorithm):
    a, b, c, d = make_batch(4, 96, seed=11)
    x = solve_batch(a, b, c, d, algorithm=algorithm)
    assert max_err(x, reference_solve(a, b, c, d)) < 1e-9


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_single_system_entry(algorithm):
    a, b, c, d = make_system(64, seed=12)
    x = solve(a, b, c, d, algorithm=algorithm)
    assert x.shape == (64,)
    assert max_err(x[None], reference_solve(a, b, c, d)) < 1e-9


def test_unknown_algorithm_rejected():
    a, b, c, d = make_batch(1, 8)
    with pytest.raises(ValueError, match="unknown algorithm"):
        solve_batch(a, b, c, d, algorithm="magic")


def test_kwargs_only_for_hybrid():
    a, b, c, d = make_batch(1, 32)
    # hybrid accepts k
    solve_batch(a, b, c, d, algorithm="hybrid", k=2)
    with pytest.raises(TypeError, match="no extra options"):
        solve_batch(a, b, c, d, algorithm="thomas", k=2)


def test_hybrid_kwargs_forwarded():
    a, b, c, d = make_batch(1, 256, seed=13)
    x1 = solve_batch(a, b, c, d, algorithm="hybrid", k=3, fuse=True)
    x2 = solve_batch(a, b, c, d, algorithm="hybrid", k=3, fuse=False)
    assert np.array_equal(x1, x2)


def test_package_level_exports():
    assert repro.solve is solve
    assert repro.solve_batch is solve_batch
    assert hasattr(repro, "HybridSolver")
    assert hasattr(repro, "GTX480_HEURISTIC")
    assert repro.__version__


def test_validation_happens_at_api_level():
    a, b, c, d = make_batch(1, 8)
    b = b.copy()
    b[0, 3] = 0.0
    with pytest.raises(ValueError, match="main diagonal"):
        solve_batch(a, b, c, d)


def test_list_inputs_accepted():
    x = solve([0.0, 1.0, 1.0], [3.0, 4.0, 3.0], [1.0, 1.0, 0.0], [1.0, 2.0, 3.0])
    ref = reference_solve(
        np.array([[0.0, 1.0, 1.0]]), np.array([[3.0, 4.0, 3.0]]),
        np.array([[1.0, 1.0, 0.0]]), np.array([[1.0, 2.0, 3.0]]),
    )
    assert max_err(x[None], ref) < 1e-12
