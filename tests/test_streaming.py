"""Generalized streaming pipeline (the paper's future work, implemented)."""

import numpy as np
import pytest

from repro.core.pcr import pcr_sweep
from repro.core.streaming import (
    Level,
    StreamingPipeline,
    jacobi_smoother_levels,
    pcr_levels,
)

from .conftest import make_batch


def _zero_fill(m, w, dtype):
    z = np.zeros((m, w), dtype=dtype)
    return (z,)


def test_single_identity_level():
    levels = [Level(apply=lambda q: (q[0].copy(),), left=0, right=0)]
    pipe = StreamingPipeline(levels, _zero_fill, chunk=8)
    x = np.arange(50.0).reshape(1, 50)
    (out,) = pipe.run((x,))
    assert np.array_equal(out, x)


@pytest.mark.parametrize("chunk", [1, 3, 8, 64])
def test_moving_average_stream_equals_oracle(chunk):
    """A 3-point average level, streamed vs applied whole."""

    def avg(window):
        (u,) = window
        w = u.shape[1] - 2
        return ((u[:, :w] + u[:, 1 : 1 + w] + u[:, 2 : 2 + w]) / 3.0,)

    levels = [Level(apply=avg, left=1, right=1) for _ in range(3)]
    pipe = StreamingPipeline(levels, _zero_fill, chunk=chunk)
    rng = np.random.default_rng(chunk)
    x = rng.standard_normal((2, 97))
    got = pipe.run((x,))
    ref = pipe.run_oracle((x,))
    for g, r in zip(got, ref):
        assert np.allclose(g, r, atol=1e-13)


@pytest.mark.parametrize("n,k,chunk", [(64, 2, 8), (200, 3, 16), (97, 4, 32)])
def test_pcr_as_generic_pipeline(n, k, chunk):
    """The generic executor reproduces the dedicated tiled PCR exactly."""
    a, b, c, d = make_batch(2, n, seed=n + k)
    levels, fill = pcr_levels(k)
    pipe = StreamingPipeline(levels, fill, chunk=chunk)
    got = pipe.run((a, b, c, d))
    ref = pcr_sweep(a, b, c, d, k)
    for g, r in zip(got, ref):
        assert np.allclose(g, r, rtol=1e-13, atol=1e-15)


def test_asymmetric_reach():
    """Levels with left != right (a causal 2-tap filter)."""

    def causal(window):
        (u,) = window
        w = u.shape[1] - 1
        return (u[:, 1 : 1 + w] - 0.5 * u[:, :w],)

    levels = [Level(apply=causal, left=1, right=0) for _ in range(2)]
    pipe = StreamingPipeline(levels, _zero_fill, chunk=7)
    x = np.random.default_rng(0).standard_normal((1, 40))
    got = pipe.run((x,))
    ref = pipe.run_oracle((x,))
    assert np.allclose(got[0], ref[0], atol=1e-14)


def test_jacobi_smoother_stream_equals_batch():
    """k streamed Jacobi sweeps == k whole-line sweeps."""
    k = 4
    rng = np.random.default_rng(1)
    u = rng.standard_normal((3, 120))
    f = rng.standard_normal((3, 120))
    levels, fill = jacobi_smoother_levels(k)
    pipe = StreamingPipeline(levels, fill, chunk=16)
    got_u, got_f = pipe.run((u, f))
    # reference: zero-extended field, padded ONCE, swept whole, cropped —
    # the streaming semantics (virtual rows are computed, not re-pinned)
    pad = k
    ref = np.pad(u, ((0, 0), (pad, pad)))
    fx = np.pad(f, ((0, 0), (pad, pad)))
    for _ in range(k):
        padded = np.pad(ref, ((0, 0), (1, 1)))
        jac = 0.5 * (padded[:, :-2] + padded[:, 2:] + fx)
        ref = (1.0 - 2.0 / 3.0) * ref + 2.0 / 3.0 * jac
    ref = ref[:, pad:-pad]
    assert np.allclose(got_u, ref, atol=1e-13)
    assert np.array_equal(got_f, f)


def test_jacobi_smoother_actually_smooths():
    """High-frequency error decays fast under the damped sweeps."""
    n = 256
    x = np.arange(n)
    rough = np.cos(np.pi * x)[None, :]  # Nyquist mode
    levels, fill = jacobi_smoother_levels(6)
    pipe = StreamingPipeline(levels, fill, chunk=32)
    out, _ = pipe.run((rough, np.zeros_like(rough)))
    # interior: damped-Jacobi Nyquist factor is (1 - 2ω)^k = (1/3)^6
    assert np.abs(out[:, 8:-8]).max() < 0.01
    # boundary mixing decays more slowly but still shrinks
    assert np.abs(out).max() < 0.15 * np.abs(rough).max()


def test_emit_streaming_interface():
    levels, fill = jacobi_smoother_levels(2)
    pipe = StreamingPipeline(levels, fill, chunk=10)
    u = np.random.default_rng(2).standard_normal((1, 55))
    f = np.zeros_like(u)
    slabs = []
    ret = pipe.run((u, f), emit=lambda e0, e1, ch: slabs.append((e0, e1)))
    assert ret is None
    assert slabs[0][0] == 0 and slabs[-1][1] == 55
    for (a0, a1), (b0, b1) in zip(slabs, slabs[1:]):
        assert a1 == b0


def test_counters_and_cache_bound():
    levels, fill = pcr_levels(3)
    pipe = StreamingPipeline(levels, fill, chunk=8)
    a, b, c, d = make_batch(1, 128, seed=5)
    pipe.run((a, b, c, d))
    assert pipe.counters.rows_loaded == 128
    assert pipe.counters.rows_produced == 128
    # dependency-minimum state: sum of (left + right) per level = 2 f(k)
    assert pipe.cache_rows() == 2 * (2**3 - 1)
    # peak resident rows stays bounded: caches + in-flight chunks
    assert pipe.counters.cache_rows_peak <= pipe.cache_rows() + 4 * 8 + len(levels)


def test_validation():
    with pytest.raises(ValueError):
        StreamingPipeline([], _zero_fill)
    with pytest.raises(ValueError):
        Level(apply=lambda q: q, left=-1, right=0)
    with pytest.raises(ValueError):
        levels, fill = jacobi_smoother_levels(0)
    with pytest.raises(ValueError):
        pcr_levels(0)


def test_level_width_mismatch_detected():
    bad = [Level(apply=lambda q: (q[0][:, :1],), left=1, right=1)]
    pipe = StreamingPipeline(bad, _zero_fill, chunk=16)
    with pytest.raises(ValueError, match="produced"):
        pipe.run((np.zeros((1, 40)),))
