"""Tables I-III materialization, calibration anchors, report generation."""

import pytest

from repro.analysis.calibration import Anchor, verify_anchors
from repro.analysis.report import experiments_markdown, markdown_table
from repro.analysis.tables import table1_rows, table2_rows, table3_rows


# ---- Table I ----------------------------------------------------------------


def test_table1_matches_paper_formulas():
    for row in table1_rows():
        k = row["k"]
        assert row["subtile"] == 2**k
        assert row["threads_per_block"] == 2**k
        assert row["cache_capacity"] == 3 * (2**k - 1)
        assert row["cache_capacity"] <= row["cache_bound_3x2k"]
        assert row["elim_per_subtile"] == k * 2**k


def test_table1_c_scaling():
    rows = table1_rows(k_values=(3,), c=4)
    assert rows[0]["subtile"] == 32
    assert rows[0]["elim_per_thread"] == 12


# ---- Table II ----------------------------------------------------------------


def test_table2_structure():
    rows = table2_rows(n_log2=12, m=64, p=23040)
    algos = [r["algorithm"] for r in rows]
    assert algos[0] == "Thomas"
    assert algos[1] == "PCR"
    assert any(a.startswith("hybrid") for a in algos)
    assert all(r["cost"] > 0 for r in rows)


def test_table2_regime_labels():
    rows = table2_rows(n_log2=10, m=50000, p=23040)
    assert rows[0]["regime"] == "M > P"
    rows = table2_rows(n_log2=10, m=4, p=23040, k_values=(2,))
    hybrid = [r for r in rows if r["algorithm"] == "hybrid(k=2)"][0]
    assert hybrid["regime"] == "2^k M <= P"


def test_table2_skips_k_beyond_n():
    rows = table2_rows(n_log2=3, m=4, p=100, k_values=(0, 2, 8))
    algos = [r["algorithm"] for r in rows]
    assert "hybrid(k=8)" not in algos


# ---- Table III ----------------------------------------------------------------


def test_table3_matches_paper():
    rows = table3_rows()
    expected = [
        (1, 16, 8, 256),
        (16, 32, 7, 128),
        (32, 512, 6, 64),
        (512, 1024, 5, 32),
        (1024, None, 0, 1),
    ]
    got = [(r["m_low"], r["m_high"], r["k"], r["tile"]) for r in rows]
    assert got == expected


# ---- calibration ----------------------------------------------------------------


def test_anchor_logic():
    a = Anchor("x", paper=10.0, model=12.0, rel_band=0.25)
    assert a.ratio == pytest.approx(1.2)
    assert a.ok
    assert not Anchor("y", 10.0, 20.0, 0.5).ok


def test_all_anchors_within_band():
    """The reproduction's headline contract: every paper number lands."""
    result = verify_anchors()
    assert len(result.anchors) >= 15
    failing = [(a.name, a.paper, a.model) for a in result.failing()]
    assert result.all_ok, failing


# ---- report ----------------------------------------------------------------


def test_markdown_table_rendering():
    rows = [{"a": 1, "b": 2.5}, {"a": 2, "b": None}]
    md = markdown_table(rows, [("a", "A"), ("b", "B")])
    lines = md.splitlines()
    assert lines[0] == "| A | B |"
    assert "| 2 | — |" in md


def test_experiments_markdown_sections():
    md = experiments_markdown()
    for fragment in (
        "# EXPERIMENTS",
        "Calibration anchors",
        "Figure 12 (a): N = 512",
        "Figure 12 (c): N = 16384",
        "Figure 13 (d): M = 1",
        "Figure 14(a)",
        "Figure 14(b)",
        "Table I",
        "Table III",
    ):
        assert fragment in md, fragment


def test_experiments_markdown_no_failures():
    assert "| NO |" not in experiments_markdown()
