"""Thomas algorithm: correctness, dtypes, edge cases, validation."""

import numpy as np
import pytest

from repro.core.thomas import thomas_solve, thomas_solve_batch

from .conftest import make_batch, make_system, max_err, reference_solve


@pytest.mark.parametrize("n", [1, 2, 3, 4, 7, 16, 33, 100, 257, 1024])
def test_matches_reference_single(n):
    a, b, c, d = make_system(n, seed=n)
    x = thomas_solve(a, b, c, d)
    assert max_err(x, reference_solve(a, b, c, d)[0]) < 1e-12


@pytest.mark.parametrize("m,n", [(1, 50), (3, 17), (10, 128), (64, 33)])
def test_matches_reference_batch(m, n):
    a, b, c, d = make_batch(m, n, seed=m * 100 + n)
    x = thomas_solve_batch(a, b, c, d)
    assert max_err(x, reference_solve(a, b, c, d)) < 1e-12


def test_batch_consistent_with_single():
    a, b, c, d = make_batch(5, 40, seed=7)
    xb = thomas_solve_batch(a, b, c, d)
    for i in range(5):
        xs = thomas_solve(a[i], b[i], c[i], d[i])
        assert np.array_equal(xs, xb[i])


def test_n_equal_one():
    x = thomas_solve(np.array([0.0]), np.array([4.0]), np.array([0.0]), np.array([8.0]))
    assert np.allclose(x, [2.0])


def test_identity_system():
    n = 10
    z = np.zeros(n)
    b = np.ones(n)
    d = np.arange(n, dtype=float)
    assert np.array_equal(thomas_solve(z, b, z, d), d)


def test_float32_supported():
    a, b, c, d = make_batch(4, 64, dtype=np.float32, seed=3)
    x = thomas_solve_batch(a, b, c, d)
    assert x.dtype == np.float32
    assert max_err(x, reference_solve(a, b, c, d)) < 1e-4


def test_float64_preserved():
    a, b, c, d = make_batch(2, 16, seed=5)
    assert thomas_solve_batch(a, b, c, d).dtype == np.float64


def test_non_dominant_but_solvable():
    # not diagonally dominant (|b| < |a| + |c|), but Thomas still works
    # as long as the running pivots stay away from zero
    n = 8
    a = np.full(n, 0.6)
    c = np.full(n, 0.6)
    b = np.full(n, 1.0)
    a[0] = 0.0
    c[-1] = 0.0
    d = np.arange(1.0, n + 1.0)
    x = thomas_solve(a, b, c, d)
    assert max_err(x, reference_solve(a, b, c, d)[0]) < 1e-9


def test_rejects_zero_diagonal():
    with pytest.raises(ValueError, match="main diagonal"):
        thomas_solve(
            np.array([0.0, 1.0]), np.array([0.0, 2.0]),
            np.array([1.0, 0.0]), np.array([1.0, 1.0]),
        )


def test_rejects_shape_mismatch():
    with pytest.raises(ValueError):
        thomas_solve(np.zeros(3), np.ones(4), np.zeros(3), np.ones(3))


def test_rejects_nan():
    a, b, c, d = make_system(8)
    d = d.copy()
    d[3] = np.nan
    with pytest.raises(ValueError, match="non-finite"):
        thomas_solve(a, b, c, d)


def test_check_false_skips_validation():
    a, b, c, d = make_system(32, seed=9)
    x1 = thomas_solve(a, b, c, d, check=True)
    x2 = thomas_solve(a, b, c, d, check=False)
    assert np.array_equal(x1, x2)


def test_inputs_not_modified():
    a, b, c, d = make_batch(2, 20, seed=11)
    copies = [v.copy() for v in (a, b, c, d)]
    thomas_solve_batch(a, b, c, d)
    for orig, ref in zip((a, b, c, d), copies):
        assert np.array_equal(orig, ref)


def test_pads_forced_to_zero():
    # a[0] / c[-1] outside the matrix are ignored even if nonzero
    a, b, c, d = make_system(10, seed=13)
    a2 = a.copy()
    a2[0] = 99.0
    c2 = c.copy()
    c2[-1] = -55.0
    x1 = thomas_solve(a, b, c, d)
    x2 = thomas_solve(a2, b, c2, d)
    assert np.allclose(x1, x2, rtol=0, atol=0)
