"""Tiled PCR: exact equivalence with the monolithic sweep, counters,
redundancy accounting, emit streaming, the naive-tiling strawman."""

import numpy as np
import pytest

from repro.core.cost_model import f_redundant_loads
from repro.core.pcr import pcr_sweep
from repro.core.tiled_pcr import (
    TiledPCR,
    TilingCounters,
    naive_tiled_pcr_sweep,
    tiled_pcr_sweep,
)

from .conftest import make_batch


@pytest.mark.parametrize("n", [16, 48, 100, 257, 1000])
@pytest.mark.parametrize("k", [1, 2, 3, 4])
def test_equivalent_to_monolithic_sweep(n, k):
    if (1 << k) > n // 2:
        pytest.skip("k too large for n")
    a, b, c, d = make_batch(2, n, seed=n + k)
    ref = pcr_sweep(a, b, c, d, k)
    out = tiled_pcr_sweep(a, b, c, d, k)
    for x, y in zip(out, ref):
        assert np.allclose(x, y, rtol=1e-13, atol=1e-15)


@pytest.mark.parametrize("n_windows", [1, 2, 3, 5, 8])
def test_multi_window_equivalence(n_windows):
    n, k = 200, 3
    a, b, c, d = make_batch(2, n, seed=n_windows)
    ref = pcr_sweep(a, b, c, d, k)
    out = tiled_pcr_sweep(a, b, c, d, k, n_windows=n_windows)
    for x, y in zip(out, ref):
        assert np.allclose(x, y, rtol=1e-13, atol=1e-15)


@pytest.mark.parametrize("c", [1, 2, 4])
def test_subtile_scale_equivalence(c):
    n, k = 150, 3
    a, b, c_, d = make_batch(1, n, seed=c)
    ref = pcr_sweep(a, b, c_, d, k)
    out = tiled_pcr_sweep(a, b, c_, d, k, subtile_scale=c)
    for x, y in zip(out, ref):
        assert np.allclose(x, y, rtol=1e-13, atol=1e-15)


def test_k_zero_passthrough():
    a, b, c, d = make_batch(2, 32, seed=0)
    out = tiled_pcr_sweep(a, b, c, d, 0)
    for orig, new in zip((a, b, c, d), out):
        assert np.array_equal(orig, new)


def test_single_window_loads_each_row_once():
    n, k = 512, 4
    a, b, c, d = make_batch(1, n, seed=1)
    cnt = TilingCounters()
    tiled_pcr_sweep(a, b, c, d, k, counters=cnt)
    assert cnt.rows_loaded == n
    assert cnt.rows_loaded_redundant == 0


@pytest.mark.parametrize("n_windows", [2, 3, 4])
def test_multi_window_redundancy_is_2fk_per_boundary(n_windows):
    """Fig. 11(b)'s tradeoff: each internal region boundary re-loads
    f(k) lead-in rows (next region) plus f(k) look-ahead rows (previous
    region) — 2·f(k) redundant loads per boundary, and no more."""
    n, k = 400, 3
    a, b, c, d = make_batch(1, n, seed=2)
    cnt = TilingCounters()
    tiled_pcr_sweep(a, b, c, d, k, n_windows=n_windows, counters=cnt)
    expected_extra = (n_windows - 1) * 2 * f_redundant_loads(k)
    assert cnt.rows_loaded == n + expected_extra
    assert cnt.rows_loaded_redundant == expected_extra


def test_eliminations_close_to_k_times_n():
    """Cached tiling does ~k·N eliminations (plus lead-in warm-up only)."""
    n, k = 1024, 4
    a, b, c, d = make_batch(1, n, seed=3)
    cnt = TilingCounters()
    tiled_pcr_sweep(a, b, c, d, k, counters=cnt)
    assert cnt.eliminations >= k * n
    # overhead bounded by the window's lead-in, not proportional to tiles
    assert cnt.eliminations <= k * n + 4 * k * f_redundant_loads(k) + 4 * k * (1 << k)


def test_naive_tiling_matches_but_costs_more():
    n, k, tile = 512, 3, 32
    a, b, c, d = make_batch(1, n, seed=4)
    ref = pcr_sweep(a, b, c, d, k)
    cached_cnt = TilingCounters()
    naive_cnt = TilingCounters()
    out_c = tiled_pcr_sweep(a, b, c, d, k, counters=cached_cnt)
    out_n = naive_tiled_pcr_sweep(a, b, c, d, k, tile=tile, counters=naive_cnt)
    for x, y in zip(out_n, ref):
        assert np.allclose(x, y, rtol=1e-13, atol=1e-15)
    for x, y in zip(out_c, ref):
        assert np.allclose(x, y, rtol=1e-13, atol=1e-15)
    # the strawman re-loads f(k) halo rows per internal boundary side:
    # every tile fetches tile + 2 f(k) rows, clipped at the two outer ends
    n_tiles = n // tile
    fk = f_redundant_loads(k)
    assert naive_cnt.rows_loaded == n + 2 * fk * n_tiles - 2 * fk
    assert naive_cnt.rows_loaded > cached_cnt.rows_loaded
    assert naive_cnt.eliminations > cached_cnt.eliminations


def test_emit_streams_cover_all_rows_in_order():
    n, k = 300, 3
    a, b, c, d = make_batch(1, n, seed=5)
    seen = []

    def emit(e0, e1, quad):
        seen.append((e0, e1))
        assert quad[0].shape == (1, e1 - e0)

    tp = TiledPCR(k=k)
    ret = tp.sweep(a, b, c, d, emit=emit)
    assert ret is None
    # ascending, non-overlapping, covering [0, n)
    assert seen[0][0] == 0
    assert seen[-1][1] == n
    for (a0, a1), (b0, b1) in zip(seen, seen[1:]):
        assert a1 == b0


def test_emit_content_matches_sweep():
    n, k = 128, 2
    a, b, c, d = make_batch(2, n, seed=6)
    ref = pcr_sweep(a, b, c, d, k)
    got = [np.zeros((2, n)) for _ in range(4)]

    def emit(e0, e1, quad):
        for dst, src in zip(got, quad):
            dst[:, e0:e1] = src

    TiledPCR(k=k).sweep(a, b, c, d, emit=emit)
    for x, y in zip(got, ref):
        assert np.allclose(x, y, rtol=1e-13, atol=1e-15)


def test_counters_merge():
    c1 = TilingCounters(rows_loaded=10, eliminations=5, subtiles=2, windows=1)
    c2 = TilingCounters(rows_loaded=3, rows_loaded_redundant=1, eliminations=2)
    c1.merge(c2)
    assert c1.rows_loaded == 13
    assert c1.rows_loaded_redundant == 1
    assert c1.eliminations == 7
    assert c1.subtiles == 2


def test_invalid_parameters():
    with pytest.raises(ValueError):
        TiledPCR(k=-1)
    with pytest.raises(ValueError):
        TiledPCR(k=2, c=0)
    with pytest.raises(ValueError):
        TiledPCR(k=2, n_windows=0)


def test_cache_rows_is_two_fk():
    for k in range(1, 9):
        assert TiledPCR(k=k).cache_rows() == 2 * f_redundant_loads(k)


def test_float32_equivalence():
    n, k = 128, 3
    a, b, c, d = make_batch(1, n, dtype=np.float32, seed=7)
    ref = pcr_sweep(a, b, c, d, k)
    out = tiled_pcr_sweep(a, b, c, d, k)
    for x, y in zip(out, ref):
        assert x.dtype == np.float32
        assert np.allclose(x, y, rtol=1e-5, atol=1e-6)


def test_windows_exceeding_rows_still_correct():
    """More windows than sensible regions must not break correctness."""
    n, k = 40, 2
    a, b, c, d = make_batch(1, n, seed=8)
    ref = pcr_sweep(a, b, c, d, k)
    out = tiled_pcr_sweep(a, b, c, d, k, n_windows=16)
    for x, y in zip(out, ref):
        assert np.allclose(x, y, rtol=1e-13, atol=1e-15)
