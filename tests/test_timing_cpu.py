"""GPU timing model behaviour and the CPU (MKL proxy) model."""

import pytest

from repro.gpusim.counters import KernelCounters
from repro.gpusim.cpu import I7_975, CpuSpec, MklProxyModel
from repro.gpusim.device import GTX480
from repro.gpusim.memory import MemoryTraffic
from repro.gpusim.timing import GpuTimingModel, StageTime


def _mem_kernel(bytes_useful, threads=1 << 20, mlp=1.0):
    t = MemoryTraffic()
    t.add_load(bytes_useful, bytes_useful // 128)
    return KernelCounters(
        name="mem", traffic=t, threads=threads, threads_per_block=128, mlp=mlp
    )


def _compute_kernel(flops, threads=1 << 20):
    return KernelCounters(
        name="fl", flops=flops, threads=threads, threads_per_block=128
    )


def test_memory_bound_time_matches_bandwidth():
    model = GpuTimingModel(GTX480)
    nbytes = 1 << 30
    st = model.time(_mem_kernel(nbytes), 8)
    expected = nbytes / (GTX480.effective_bandwidth_gbs() * 1e9)
    assert st.memory_s == pytest.approx(expected, rel=1e-6)
    assert st.bound == "memory"


def test_memory_time_scales_linearly():
    model = GpuTimingModel(GTX480)
    t1 = model.time(_mem_kernel(1 << 28), 8).memory_s
    t2 = model.time(_mem_kernel(1 << 29), 8).memory_s
    assert t2 == pytest.approx(2 * t1, rel=1e-6)


def test_low_parallelism_derates_bandwidth():
    model = GpuTimingModel(GTX480)
    fast = model.time(_mem_kernel(1 << 28, threads=1 << 20), 8).memory_s
    slow = model.time(_mem_kernel(1 << 28, threads=256), 8).memory_s
    assert slow > 2 * fast


def test_mlp_recovers_bandwidth_at_low_occupancy():
    model = GpuTimingModel(GTX480)
    base = model.time(_mem_kernel(1 << 28, threads=256, mlp=1.0), 8).memory_s
    mlp4 = model.time(_mem_kernel(1 << 28, threads=256, mlp=4.0), 8).memory_s
    assert mlp4 < base


def test_compute_bound_fp64_vs_fp32():
    model = GpuTimingModel(GTX480)
    k = _compute_kernel(10**9)
    t64 = model.time(k, 8).compute_s
    t32 = model.time(k, 4).compute_s
    assert t64 == pytest.approx(8 * t32, rel=1e-6)  # GeForce 1/8 FP64


def test_latency_term_flat_in_work():
    """A dependent chain with few warps costs chain x latency regardless
    of how much other work exists — the Fig. 12 flat region mechanism."""
    model = GpuTimingModel(GTX480)
    k = KernelCounters(
        name="chain", dependent_steps=1000, threads=32, threads_per_block=32
    )
    st = model.time(k, 8)
    assert st.latency_s > 0
    # plenty of warps hide it completely
    k2 = KernelCounters(
        name="chain", dependent_steps=1000, threads=1 << 20, threads_per_block=256
    )
    st2 = model.time(k2, 8)
    assert st2.latency_s < st.latency_s


def test_launch_overhead_additive():
    model = GpuTimingModel(GTX480)
    k = _mem_kernel(1 << 20)
    k.launches = 10
    st = model.time(k, 8)
    assert st.launch_s == pytest.approx(10 * GTX480.kernel_launch_overhead_us * 1e-6)
    assert st.total_s >= st.launch_s


def test_stage_time_total_is_max_plus_overheads():
    st = StageTime(
        compute_s=1.0, memory_s=2.0, latency_s=0.5, smem_s=0.1,
        sync_s=0.2, launch_s=0.3,
    )
    assert st.total_s == pytest.approx(2.0 + 0.2 + 0.3)
    assert st.bound == "memory"


def test_empty_kernel_costs_only_launch():
    model = GpuTimingModel(GTX480)
    st = model.time(KernelCounters(name="noop", threads=32, threads_per_block=32), 8)
    assert st.compute_s == 0.0
    assert st.memory_s == 0.0
    assert st.total_s == pytest.approx(st.launch_s + st.sync_s)


# ---- CPU model ---------------------------------------------------------------


def test_sequential_linear_in_mn():
    mkl = MklProxyModel()
    t1 = mkl.sequential_s(100, 512)
    t2 = mkl.sequential_s(200, 512)
    t3 = mkl.sequential_s(100, 1024)
    assert t2 == pytest.approx(2 * t1)
    assert t3 == pytest.approx(2 * t1)


def test_multithreaded_falls_back_for_single_system():
    mkl = MklProxyModel()
    assert mkl.multithreaded_s(1, 4096) == mkl.sequential_s(1, 4096)


def test_multithreaded_speedup_band():
    """At large M the MT/seq ratio is ~ threads x efficiency (5-6x)."""
    mkl = MklProxyModel()
    ratio = mkl.sequential_s(10000, 512) / mkl.multithreaded_s(10000, 512)
    assert 4.5 < ratio < 6.5


def test_multithreaded_overhead_dominates_tiny_batches():
    mkl = MklProxyModel()
    t = mkl.multithreaded_s(2, 4)
    assert t > I7_975.mt_overhead_us * 1e-6


def test_single_precision_cheaper():
    mkl = MklProxyModel()
    assert mkl.sequential_s(100, 512, 4) < mkl.sequential_s(100, 512, 8)


def test_row_ns_rejects_bad_dtype():
    with pytest.raises(ValueError):
        I7_975.row_ns(2)


def test_model_rejects_bad_shape():
    mkl = MklProxyModel()
    with pytest.raises(ValueError):
        mkl.sequential_s(0, 10)


def test_custom_cpu_spec():
    fast = CpuSpec(name="fast", cores=8, threads=16, clock_ghz=4.0, row_ns_fp64=10.0)
    mkl = MklProxyModel(cpu=fast)
    assert mkl.sequential_s(10, 100) == pytest.approx(10 * 100 * 10e-9)
