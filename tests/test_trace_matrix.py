"""Trace uniformity: every route × backend fills the same vocabulary.

The SolveRequest → SolveOutcome spine promises that *one* trace schema
describes every dispatch: plain, prepared (fingerprinted), and periodic
solves all populate backend, k, plan-cache state, factorization state,
``periodic`` and ``rhs_only`` — no backend leaves a field at a
misleading default.  This matrix pins that promise.
"""

import numpy as np
import pytest

from repro.backends import BackendError, last_trace, solve_via

_PLAN_CACHE_STATES = {"hit", "miss", "n/a"}
_FACTORIZATION_STATES = {"hit", "factored", "miss", "off", "handle", "n/a"}

ROUTES = ("plain", "prepared", "periodic")
BACKENDS = ("engine", "threaded", "numpy", "gpusim")


def _batch(route: str, backend: str, m=8, n=64):
    # distinct coefficients per (route, backend) cell so the shared
    # default engine's fingerprint ledger never couples two cells
    seed = sum(map(ord, route + ":" + backend))
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, n))
    c = rng.standard_normal((m, n))
    b = 4.0 + np.abs(a) + np.abs(c)
    d = rng.standard_normal((m, n))
    if route != "periodic":
        a[:, 0] = 0.0
        c[:, -1] = 0.0
    return a, b, c, d


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("route", ROUTES)
def test_every_route_populates_the_full_trace(route, backend):
    a, b, c, d = _batch(route, backend)

    if route == "prepared":
        if backend == "numpy":
            with pytest.raises(BackendError, match="prepared"):
                solve_via(a, b, c, d, backend=backend, fingerprint=True)
            return
        solve_via(a, b, c, d, backend=backend, fingerprint=True)  # factor
        x, trace = solve_via(a, b, c, d, backend=backend, fingerprint=True)
        assert trace.factorization == "hit"
        assert trace.rhs_only is True
    elif route == "periodic":
        x, trace = solve_via(a, b, c, d, backend=backend, periodic=True)
        assert trace.periodic is True
    else:
        x, trace = solve_via(a, b, c, d, backend=backend)
        assert trace.periodic is False

    # one schema, uniformly populated
    assert trace.backend == backend
    assert trace.m == 8 and trace.n == 64
    assert trace.dtype == "float64"
    assert isinstance(trace.k, int) and trace.k >= 0
    assert trace.k_source
    assert trace.workers >= 1
    assert trace.plan_cache in _PLAN_CACHE_STATES
    assert trace.factorization in _FACTORIZATION_STATES
    assert isinstance(trace.rhs_only, bool)
    assert isinstance(trace.periodic, bool)

    # stages: validate first, every timing finite and non-negative
    assert trace.stages, "no stage timings recorded"
    assert trace.stages[0].name == "validate"
    assert all(s.seconds >= 0.0 for s in trace.stages)

    # the trace is also the thread's queryable last_trace
    assert last_trace() is trace

    # decision provenance: explicit dispatch is recorded as such
    assert trace.decision is not None
    assert trace.decision.router == "explicit"
    assert trace.decision.chosen == backend
    assert trace.decision.candidates == (backend,)
    assert trace.decision.reason
    info = trace.describe()["decision"]
    assert info["router"] == "explicit" and info["chosen"] == backend

    # and the route actually solved the system
    ref, _ = solve_via(
        a, b, c, d, backend="numpy", periodic=(route == "periodic")
    )
    np.testing.assert_allclose(x, ref, rtol=1e-10, atol=1e-12)


@pytest.mark.parametrize("periodic", [False, True])
def test_routed_dispatch_stamps_static_decision(periodic):
    a, b, c, d = _batch("periodic" if periodic else "plain", "auto")
    _, trace = solve_via(a, b, c, d, periodic=periodic)
    assert trace.decision is not None
    assert trace.decision.router == "static"
    assert trace.decision.chosen == trace.backend
    assert trace.backend in trace.decision.candidates
    assert len(trace.decision.candidates) > 1
    assert trace.decision.reason


def test_workers_rule_decision_names_the_rule():
    a, b, c, d = _batch("plain", "workers-rule")
    _, trace = solve_via(a, b, c, d, workers=2)
    assert trace.decision.router == "static"
    assert trace.decision.chosen == "threaded"
    assert "route_workers" in trace.decision.reason


def _penta_batch(backend: str, m=8, n=64):
    from repro.workloads.generators import random_penta_batch

    seed = sum(map(ord, "penta:" + backend))
    return random_penta_batch(m, n, seed=seed)


def _block_batch(backend: str, m=6, n=16, bs=2):
    from repro.workloads.generators import random_block_batch

    seed = sum(map(ord, "block:" + backend))
    return random_block_batch(m, n, block_size=bs, seed=seed)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("system", ("pentadiagonal", "block"))
def test_banded_routes_populate_the_same_trace_schema(system, backend):
    """Penta and block dispatch fill the *identical* vocabulary the
    tridiagonal routes do, plus the ``system`` stamp."""
    if system == "pentadiagonal":
        e, a, b, c, f, d = _penta_batch(backend)
        x, trace = solve_via(a, b, c, d, e=e, f=f, backend=backend)
        m, n = 8, 64
    else:
        A, B, C, d = _block_batch(backend)
        x, trace = solve_via(A, B, C, d, backend=backend)
        m, n = 6, 16

    assert trace.system == system
    assert trace.backend == backend
    assert trace.m == m and trace.n == n
    assert trace.dtype == "float64"
    assert trace.k == 0 and trace.k_source == "banded"
    assert trace.workers >= 1
    assert trace.plan_cache in _PLAN_CACHE_STATES
    assert trace.factorization in _FACTORIZATION_STATES
    assert isinstance(trace.rhs_only, bool)
    assert trace.periodic is False
    assert trace.stages
    assert trace.stages[0].name == "validate"
    assert all(s.seconds >= 0.0 for s in trace.stages)
    assert last_trace() is trace
    assert trace.decision is not None
    assert trace.decision.router == "explicit"
    assert trace.decision.chosen == backend
    info = trace.describe()
    assert info["system"] == system

    # the route actually solved the system (numpy = dense oracle)
    if system == "pentadiagonal":
        ref, _ = solve_via(a, b, c, d, e=e, f=f, backend="numpy")
    else:
        ref, _ = solve_via(A, B, C, d, backend="numpy")
    np.testing.assert_allclose(x, ref, rtol=1e-9, atol=1e-12)


def test_prepared_penta_trace_reports_rhs_only():
    e, a, b, c, f, d = _penta_batch("prep-engine")
    solve_via(a, b, c, d, e=e, f=f, backend="engine", fingerprint=True)
    x, trace = solve_via(
        a, b, c, d, e=e, f=f, backend="engine", fingerprint=True
    )
    assert trace.system == "pentadiagonal"
    assert trace.factorization in {"hit", "factored"}
    assert trace.rhs_only is True
    cold, _ = solve_via(
        a, b, c, d, e=e, f=f, backend="engine", fingerprint=False
    )
    assert np.array_equal(x, cold)


def test_tridiagonal_routes_stamp_default_system():
    a, b, c, d = _batch("plain", "engine")
    _, trace = solve_via(a, b, c, d, backend="engine")
    assert trace.system == "tridiagonal"
    assert "system" in trace.describe()


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("route", ROUTES)
def test_session_step_once_populates_the_full_trace(route, backend):
    """The session rows of the matrix: ``bind(...)`` + ``step_once()``
    fills the identical trace vocabulary the one-shot dispatch does —
    the bind/execute split changes when the work happens, never what
    the trace says about it."""
    from repro.backends import bind_via

    a, b, c, d = _batch(route, backend)
    opts = {}
    if route == "prepared":
        if backend == "numpy":
            with pytest.raises(BackendError, match="prepared"):
                bind_via(a, b, c, d, backend=backend, fingerprint=True)
            return
        opts["fingerprint"] = True

    with bind_via(
        a, b, c, d, backend=backend,
        periodic=(route == "periodic"), **opts
    ) as session:
        outcome = session.step_once(d)
        trace = outcome.trace
        x = outcome.x

    assert trace.backend == backend
    assert trace.m == 8 and trace.n == 64
    assert trace.dtype == "float64"
    assert isinstance(trace.k, int) and trace.k >= 0
    assert trace.workers >= 1
    assert trace.plan_cache in _PLAN_CACHE_STATES
    assert trace.factorization in _FACTORIZATION_STATES
    assert isinstance(trace.rhs_only, bool)
    assert trace.periodic is (route == "periodic")
    if route == "prepared":
        # a persistent fingerprinted bind forces the factorization at
        # bind time, so the very first step already runs RHS-only
        assert trace.rhs_only is True
        assert trace.factorization in {"hit", "factored"}
    assert trace.stages
    assert all(s.seconds >= 0.0 for s in trace.stages)

    # bind-time provenance rides on every step's trace
    assert trace.decision is not None
    assert trace.decision.router == "explicit"
    assert trace.decision.chosen == backend

    ref, _ = solve_via(
        a, b, c, d, backend="numpy", periodic=(route == "periodic")
    )
    np.testing.assert_allclose(x, ref, rtol=1e-10, atol=1e-12)


def test_prepared_handle_traces_use_the_same_schema():
    import repro

    a, b, c, d = _batch("handle", "prepared", n=32)
    handle = repro.prepare(a, b, c, k=0)
    x = handle.solve(d)
    trace = last_trace()
    assert trace is not None
    assert trace.backend == "prepared"
    assert trace.factorization == "handle"
    assert trace.rhs_only is True
    assert trace.periodic is False
    assert trace.plan_cache in _PLAN_CACHE_STATES
    assert trace.stages
    np.testing.assert_allclose(
        x, solve_via(a, b, c, d, backend="numpy")[0], rtol=1e-10, atol=1e-12
    )
