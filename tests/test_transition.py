"""Transition logic: Table III heuristic and analytic k selection."""

import pytest

from repro.core.transition import (
    GTX480_HEURISTIC,
    TransitionHeuristic,
    clamp_k,
    select_k_analytic,
    select_k_heuristic,
)
from repro.gpusim.device import GTX480


@pytest.mark.parametrize(
    "m,expected_k",
    [
        (1, 8), (8, 8), (15, 8),       # M < 16 -> k = 8
        (16, 7), (31, 7),              # 16 <= M < 32 -> 7
        (32, 6), (511, 6),             # 32 <= M < 512 -> 6
        (512, 5), (1023, 5),           # 512 <= M < 1024 -> 5
        (1024, 0), (100000, 0),        # M >= 1024 -> 0
    ],
)
def test_table3_values(m, expected_k):
    assert GTX480_HEURISTIC.k_for(m) == expected_k


@pytest.mark.parametrize(
    "m,tile", [(1, 256), (16, 128), (32, 64), (512, 32), (1024, 1)]
)
def test_table3_tile_sizes(m, tile):
    assert GTX480_HEURISTIC.tile_size(m) == tile


def test_heuristic_clamps_to_system_size():
    # k = 8 would need 2^8 <= N/2; for N = 64 the clamp allows k <= 5
    assert GTX480_HEURISTIC.k_for(1, 64) == 5
    assert GTX480_HEURISTIC.k_for(1, 4) == 1
    assert GTX480_HEURISTIC.k_for(1, 2) == 0


def test_clamp_k_bounds():
    assert clamp_k(8, 1 << 20) == 8
    assert clamp_k(8, 512) == 8
    assert clamp_k(8, 256) == 7
    assert clamp_k(3, 2) == 0
    assert clamp_k(0, 100) == 0


def test_heuristic_rejects_bad_m():
    with pytest.raises(ValueError):
        GTX480_HEURISTIC.k_for(0)


def test_custom_heuristic_validation():
    with pytest.raises(ValueError, match="len"):
        TransitionHeuristic(thresholds=(10,), ks=(1,))
    with pytest.raises(ValueError, match="increasing"):
        TransitionHeuristic(thresholds=(10, 5), ks=(1, 2, 3))


def test_custom_heuristic_lookup():
    h = TransitionHeuristic(thresholds=(100,), ks=(4, 0), name="test")
    assert h.k_for(50) == 4
    assert h.k_for(100) == 0


def test_select_k_heuristic_wrapper():
    assert select_k_heuristic(8, 1 << 16) == 8
    assert select_k_heuristic(2048) == 0


# ---- analytic selection ---------------------------------------------------


def test_analytic_k_zero_when_saturated():
    """Section III-D: when M > P the minimum is at k = 0."""
    p = GTX480.max_resident_threads
    assert select_k_analytic(12, 2 * p, p) == 0


def test_analytic_k_positive_when_starved():
    """Few systems, big machine: PCR must manufacture parallelism."""
    p = GTX480.max_resident_threads
    k = select_k_analytic(20, 1, p)
    assert k >= 8


def test_analytic_k_monotone_in_m():
    """More systems -> never more PCR steps (weakly decreasing k)."""
    p = GTX480.max_resident_threads
    ks = [select_k_analytic(14, m, p) for m in (1, 4, 16, 64, 256, 1024, 4096, 65536)]
    assert all(k1 >= k2 for k1, k2 in zip(ks, ks[1:]))


def test_analytic_k_respects_cap():
    assert select_k_analytic(20, 1, 10**6, k_max=3) <= 3


def test_analytic_k_zero_for_tiny_systems():
    assert select_k_analytic(0, 4, 1000) == 0
