"""Input validation helpers and numeric utilities."""

import numpy as np
import pytest

from repro.core.validation import (
    check_batch_arrays,
    check_system_arrays,
    is_power_of_two,
    require_power_of_two,
)
from repro.util.numerics import (
    diagonal_dominance_margin,
    is_diagonally_dominant,
    max_relative_error,
    residual_norm,
)
from repro.util.tridiag import BatchTridiagonal, TridiagonalSystem

from .conftest import make_batch, make_system, reference_solve


# ---- validation -------------------------------------------------------


def test_check_system_normalizes_dtype():
    a, b, c, d = check_system_arrays([0, 1, 1], [3, 3, 3], [1, 1, 0], [1, 2, 3])
    assert b.dtype == np.float64


def test_check_system_zeroes_pads():
    a, b, c, d = check_system_arrays(
        np.array([5.0, 1.0]), np.array([3.0, 3.0]),
        np.array([1.0, 9.0]), np.array([1.0, 1.0]),
    )
    assert a[0] == 0.0
    assert c[-1] == 0.0


def test_check_system_rejects_zero_pivot():
    with pytest.raises(ValueError, match="main diagonal"):
        check_system_arrays(
            np.zeros(2), np.array([1.0, 0.0]), np.zeros(2), np.ones(2)
        )


def test_check_batch_rejects_1d():
    with pytest.raises(ValueError, match="2-D"):
        check_batch_arrays(np.zeros(3), np.ones(3), np.zeros(3), np.ones(3))


def test_check_system_rejects_2d():
    a, b, c, d = make_batch(2, 3)
    with pytest.raises(ValueError, match="1-D"):
        check_system_arrays(a, b, c, d)


def test_check_batch_rejects_inf():
    a, b, c, d = make_batch(2, 4)
    b = b.copy()
    b[1, 2] = np.inf
    with pytest.raises(ValueError, match="non-finite"):
        check_batch_arrays(a, b, c, d)


@pytest.mark.parametrize("x,expect", [(1, True), (2, True), (64, True),
                                      (0, False), (-4, False), (3, False), (48, False)])
def test_is_power_of_two(x, expect):
    assert is_power_of_two(x) is expect


def test_require_power_of_two():
    assert require_power_of_two(8, "tile") == 8
    with pytest.raises(ValueError, match="tile"):
        require_power_of_two(6, "tile")


# ---- numerics utilities -------------------------------------------------


def test_residual_norm_zero_for_exact():
    a, b, c, d = make_batch(2, 10, seed=1)
    batch = BatchTridiagonal(a, b, c, d)
    x = reference_solve(a, b, c, d)
    assert residual_norm(batch, x) < 1e-12


def test_residual_norm_large_for_garbage():
    a, b, c, d = make_system(10, seed=2)
    s = TridiagonalSystem(a, b, c, d)
    assert residual_norm(s, np.full(10, 1e6)) > 1.0


def test_max_relative_error():
    assert max_relative_error([1.0, 2.0], [1.0, 2.0]) == 0.0
    assert max_relative_error([1.1, 2.0], [1.0, 2.0]) == pytest.approx(0.1)
    # guards against tiny references
    assert max_relative_error([1e-12], [0.0]) == pytest.approx(1e-12)


def test_dominance_margin_and_flag():
    a, b, c, d = make_batch(2, 6, dominance=2.0)
    assert diagonal_dominance_margin(a, b, c) == pytest.approx(2.0)
    assert is_diagonally_dominant(a, b, c)
    assert is_diagonally_dominant(a, b, c, strict=False)


def test_non_dominant_detected():
    a = np.array([0.0, 1.0])
    b = np.array([1.0, 1.0])
    c = np.array([1.0, 0.0])
    assert not is_diagonally_dominant(a, b, c)
    assert is_diagonally_dominant(a, b, c, strict=False)
