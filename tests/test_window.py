"""BufferedSlidingWindow: Table I properties and resource accounting."""

import pytest

from repro.core.cost_model import f_redundant_loads
from repro.core.window import BufferedSlidingWindow


@pytest.mark.parametrize("k", range(1, 9))
def test_table1_per_k(k):
    w = BufferedSlidingWindow(k=k)
    assert w.subtile == 2**k
    assert w.threads_per_block == 2**k
    assert w.cache_capacity == 3 * (2**k - 1)
    assert w.cache_capacity <= 3 * 2**k        # Table I bound
    assert w.min_cache_capacity == 2 * (2**k - 1)
    assert w.elim_steps_per_thread == k
    assert w.elim_steps_per_subtile == k * 2**k


@pytest.mark.parametrize("c", [1, 2, 4])
def test_table1_with_c(c):
    w = BufferedSlidingWindow(k=3, c=c)
    assert w.subtile == c * 8
    assert w.elim_steps_per_thread == c * 3
    assert w.elim_steps_per_subtile == c * 3 * 8
    assert w.threads_per_block == 8  # independent of c


def test_buffer_geometry_fig9():
    """top = S, middle = 2S, bottom = S -> 4S total."""
    w = BufferedSlidingWindow(k=4, c=2)
    s = w.subtile
    assert w.top_rows == s
    assert w.middle_rows == 2 * s
    assert w.bottom_rows == s
    assert w.total_rows == 4 * s


def test_smem_bytes():
    w = BufferedSlidingWindow(k=4, dtype_bytes=8)
    assert w.smem_bytes() == 4 * 16 * 4 * 8  # 4S rows x 4 values x 8 B
    w32 = BufferedSlidingWindow(k=4, dtype_bytes=4)
    assert w32.smem_bytes() == w.smem_bytes() // 2


def test_round_cost():
    w = BufferedSlidingWindow(k=3)
    rc = w.round_cost()
    assert rc.global_rows_loaded == 8
    assert rc.eliminations == 3 * 8
    assert rc.barriers == 4  # k + 1
    assert rc.smem_rows_copied == w.top_rows + w.middle_rows


def test_rounds_for_includes_lead_in():
    w = BufferedSlidingWindow(k=3)  # S = 8, f(k) = 7
    assert w.rounds_for(0) == 1     # lead-in alone needs a round
    assert w.rounds_for(8) == 2     # 8 + 7 = 15 -> 2 rounds
    assert w.rounds_for(100) == -(-107 // 8)


def test_rounds_for_rejects_negative():
    with pytest.raises(ValueError):
        BufferedSlidingWindow(k=2).rounds_for(-1)


def test_validation():
    with pytest.raises(ValueError):
        BufferedSlidingWindow(k=-1)
    with pytest.raises(ValueError):
        BufferedSlidingWindow(k=2, c=0)
    with pytest.raises(ValueError):
        BufferedSlidingWindow(k=2, dtype_bytes=2)


def test_table_one_dict_consistency():
    w = BufferedSlidingWindow(k=5, c=2)
    t = w.table_one()
    assert t["subtile_size"] == w.subtile
    assert t["threads_per_block"] == w.threads_per_block
    assert t["cache_capacity"] == w.cache_capacity
    assert t["elim_steps_per_subtile"] == w.elim_steps_per_subtile


def test_matches_streaming_implementation_cache():
    """The streaming TiledPCR holds 2·f(k) rows — the paper's minimum,
    within the window's 3·f(k) shipped capacity."""
    from repro.core.tiled_pcr import TiledPCR

    for k in range(1, 9):
        w = BufferedSlidingWindow(k=k)
        tp = TiledPCR(k=k)
        assert tp.cache_rows() == w.min_cache_capacity
        assert tp.cache_rows() <= w.cache_capacity
