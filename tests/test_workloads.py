"""Workload generators and the PDE application builders."""

import numpy as np
import pytest

import repro
from repro.util.numerics import is_diagonally_dominant
from repro.workloads.generators import (
    graded_batch,
    near_singular_batch,
    poisson1d_batch,
    random_batch,
    toeplitz_batch,
)
from repro.workloads.pde import (
    adi_row_systems,
    crank_nicolson_system,
    cubic_spline_system,
    multigrid_line_systems,
    periodic_heat_coefficients,
    periodic_heat_rhs,
)

from .conftest import max_err, reference_solve


# ---- generators ------------------------------------------------------------


def test_random_batch_shapes_and_pads():
    a, b, c, d = random_batch(5, 33)
    assert a.shape == (5, 33)
    assert np.all(a[:, 0] == 0) and np.all(c[:, -1] == 0)
    assert is_diagonally_dominant(a, b, c)


def test_random_batch_reproducible():
    x1 = random_batch(2, 8, seed=42)
    x2 = random_batch(2, 8, seed=42)
    for u, v in zip(x1, x2):
        assert np.array_equal(u, v)
    x3 = random_batch(2, 8, seed=43)
    assert not np.array_equal(x1[3], x3[3])


def test_random_batch_dominance_param():
    a, b, c, d = random_batch(3, 16, dominance=7.0)
    margin = np.min(np.abs(b) - np.abs(a) - np.abs(c))
    assert margin == pytest.approx(7.0)
    with pytest.raises(ValueError):
        random_batch(1, 4, dominance=0.0)


def test_toeplitz_batch_constant_coeffs():
    a, b, c, d = toeplitz_batch(2, 10, coeffs=(-1.0, 4.0, -2.0))
    assert np.all(b == 4.0)
    assert np.all(a[:, 1:] == -1.0)
    assert np.all(c[:, :-1] == -2.0)


def test_poisson_solvable_and_accurate():
    a, b, c, d = poisson1d_batch(2, 200)
    x = repro.solve_batch(a, b, c, d)
    assert max_err(x, reference_solve(a, b, c, d)) < 1e-6


def test_graded_batch_scales_rows():
    a, b, c, d = graded_batch(1, 50, ratio=1e4)
    assert np.abs(b[0, -1]) > 100 * np.abs(b[0, 0])
    x = repro.solve_batch(a, b, c, d)
    assert max_err(x, reference_solve(a, b, c, d)) < 1e-8


def test_near_singular_still_solvable():
    a, b, c, d = near_singular_batch(2, 64, margin=1e-4)
    x = repro.solve_batch(a, b, c, d)
    assert np.all(np.isfinite(x))


def test_float32_generators():
    a, b, c, d = random_batch(2, 8, dtype=np.float32)
    assert b.dtype == np.float32


# ---- Crank–Nicolson -----------------------------------------------------------


def test_cn_system_preserves_steady_state():
    """A linear temperature profile is stationary under pure diffusion."""
    m, n = 3, 40
    u = np.tile(np.linspace(0.0, 1.0, n), (m, 1))
    a, b, c, d = crank_nicolson_system(u, alpha=0.5, dt=1e-3, dx=1.0 / (n - 1))
    u_next = repro.solve_batch(a, b, c, d)
    assert np.allclose(u_next, u, atol=1e-12)


def test_cn_system_dirichlet_rows():
    u = np.random.default_rng(0).random((2, 16))
    a, b, c, d = crank_nicolson_system(u, 0.1, 1e-3, 0.1)
    assert np.all(b[:, 0] == 1.0) and np.all(c[:, 0] == 0.0)
    assert np.all(b[:, -1] == 1.0) and np.all(a[:, -1] == 0.0)
    assert np.allclose(d[:, 0], u[:, 0])


def test_cn_mode_decay_one_step():
    """One CN step damps the fundamental mode by the trapezoidal factor."""
    n = 200
    alpha, dt = 0.3, 1e-3
    dx = 1.0 / (n - 1)
    xg = np.linspace(0.0, 1.0, n)
    u = np.sin(np.pi * xg)[None, :]
    a, b, c, d = crank_nicolson_system(u, alpha, dt, dx)
    u1 = repro.solve_batch(a, b, c, d)
    lam = alpha * (np.pi**2)
    expected = (1 - lam * dt / 2) / (1 + lam * dt / 2)
    measured = u1[0, n // 2] / u[0, n // 2]
    assert measured == pytest.approx(expected, rel=1e-3)


def test_cn_rejects_1d_field():
    with pytest.raises(ValueError):
        crank_nicolson_system(np.zeros(10), 0.1, 1e-3, 0.1)


# ---- ADI / spline / multigrid builders -------------------------------------------


def test_adi_rows_shape_and_dominance():
    f = np.random.default_rng(1).random((8, 12))
    a, b, c, d = adi_row_systems(f, beta=0.4)
    assert b.shape == (8, 12)
    assert is_diagonally_dominant(a, b, c, strict=False)
    assert np.array_equal(d, f)


def test_adi_rejects_bad_input():
    with pytest.raises(ValueError):
        adi_row_systems(np.zeros(5), 0.1)


def test_spline_system_matches_scipy():
    from scipy.interpolate import CubicSpline

    x = np.linspace(0, 5, 20)
    y = np.cos(x)[None, :]
    a, b, c, d = cubic_spline_system(x, y)
    m2 = repro.solve_batch(a, b, c, d)
    ref = CubicSpline(x, y[0], bc_type="natural")
    # scipy stores c[2] ~ second-derivative/... compare via second derivative
    assert np.allclose(m2[0], ref(x, 2), atol=1e-8)


def test_spline_validation():
    with pytest.raises(ValueError, match="increasing"):
        cubic_spline_system(np.array([0.0, 0.0, 1.0]), np.zeros((1, 3)))
    with pytest.raises(ValueError, match="3 knots"):
        cubic_spline_system(np.array([0.0, 1.0]), np.zeros((1, 2)))
    with pytest.raises(ValueError, match="matching"):
        cubic_spline_system(np.linspace(0, 1, 4), np.zeros((1, 5)))


def test_multigrid_lines_dominant():
    r = np.random.default_rng(2).random((6, 30))
    a, b, c, d = multigrid_line_systems(r, anisotropy=10.0)
    assert is_diagonally_dominant(a, b, c)
    with pytest.raises(ValueError):
        multigrid_line_systems(r, anisotropy=0.5)
    with pytest.raises(ValueError):
        multigrid_line_systems(np.zeros(5))


# ---- periodic (ring) heat builders ----------------------------------------


def test_periodic_heat_coefficients_shape_and_corners():
    a, b, c = periodic_heat_coefficients(3, 20, alpha=0.2, dt=1e-3, dx=0.05)
    r = 0.2 * 1e-3 / (2 * 0.05**2)
    assert a.shape == b.shape == c.shape == (3, 20)
    # no boundary rows: every entry is the interior stencil, and the
    # corners a[:,0]/c[:,-1] carry the wrap coupling
    assert np.allclose(a, -r) and np.allclose(c, -r)
    assert np.allclose(b, 1.0 + 2.0 * r)


def test_periodic_heat_rhs_is_mass_conserving():
    rng = np.random.default_rng(3)
    u = rng.random((4, 32))
    d = periodic_heat_rhs(u, alpha=0.3, dt=1e-3, dx=0.1)
    # explicit half-step row sums are 1: total mass is preserved exactly
    assert np.allclose(d.sum(axis=1), u.sum(axis=1), rtol=1e-13)


def test_periodic_heat_step_conserves_and_decays():
    m, n = 2, 64
    alpha, dt = 0.25, 5e-4
    dx = 1.0 / n
    xg = np.arange(n) * dx
    u = 1.0 + np.outer([0.5, 1.5], np.sin(2 * np.pi * xg))
    a, b, c = periodic_heat_coefficients(m, n, alpha, dt, dx)
    u1 = repro.solve_periodic_batch(a, b, c, periodic_heat_rhs(u, alpha, dt, dx))
    assert np.allclose(u1.sum(axis=1), u.sum(axis=1), rtol=1e-12)
    # CN damps the fundamental ring mode by the trapezoidal factor of
    # the discrete eigenvalue
    lam = alpha * (2.0 - 2.0 * np.cos(2 * np.pi / n)) / dx**2
    expected = (1 - lam * dt / 2) / (1 + lam * dt / 2)
    measured = (u1[0] - 1.0)[n // 4] / (u[0] - 1.0)[n // 4]
    assert measured == pytest.approx(expected, rel=1e-10)


def test_periodic_heat_coefficients_float32():
    a, b, c = periodic_heat_coefficients(
        2, 16, alpha=0.1, dt=1e-3, dx=0.1, dtype=np.float32
    )
    assert a.dtype == b.dtype == c.dtype == np.float32


def test_random_penta_batch_shapes_pads_dominance():
    from repro.workloads.generators import random_penta_batch

    e, a, b, c, f, d = random_penta_batch(3, 16, seed=2)
    for arr in (e, a, b, c, f, d):
        assert arr.shape == (3, 16)
    assert np.all(e[:, :2] == 0) and np.all(a[:, 0] == 0)
    assert np.all(c[:, -1] == 0) and np.all(f[:, -2:] == 0)
    # rowwise diagonal dominance (the no-pivot LU's stability condition)
    assert np.all(
        np.abs(b)
        > np.abs(e) + np.abs(a) + np.abs(c) + np.abs(f)
    )
    e2, *_ = random_penta_batch(3, 16, seed=2)
    assert np.array_equal(e, e2)


def test_random_block_batch_shapes_pads_dominance():
    from repro.workloads.generators import random_block_batch

    A, B, C, d = random_block_batch(2, 8, block_size=3, seed=4)
    assert A.shape == B.shape == C.shape == (2, 8, 3, 3)
    assert d.shape == (2, 8, 3)
    assert np.all(A[:, 0] == 0) and np.all(C[:, -1] == 0)
    # the diagonal shift makes each B_i strictly dominant over its row
    # of off-diagonal mass -> block-Thomas solvable without pivoting
    from repro.core.blocktridiag import block_residual, block_thomas_solve_batch

    x = block_thomas_solve_batch(A, B, C, d)
    assert np.abs(block_residual(A, B, C, d, x)).max() < 1e-9


def test_hyperdiffusion_coefficients_structure():
    from repro.workloads.pde import hyperdiffusion_coefficients

    m, n, kappa, dt, dx = 2, 32, 1.0e-3, 0.1, 0.05
    e, a, b, c, f = hyperdiffusion_coefficients(m, n, kappa, dt, dx)
    r = kappa * dt / dx**4
    # interior rows carry the biharmonic stencil (1, -4, 6, -4, 1) * r
    assert np.allclose(b[:, 2 : n - 2], 1.0 + 6.0 * r)
    assert np.allclose(a[:, 2 : n - 2], -4.0 * r)
    assert np.allclose(e[:, 2 : n - 2], r)
    # clamped boundary rows are identity
    for j in (0, 1, n - 2, n - 1):
        assert np.all(b[:, j] == 1.0)
        assert np.all(a[:, j] == 0) and np.all(c[:, j] == 0)
        assert np.all(e[:, j] == 0) and np.all(f[:, j] == 0)
    with pytest.raises(ValueError, match="n >= 5"):
        hyperdiffusion_coefficients(1, 4, kappa, dt, dx)


def test_hyperdiffusion_step_damps_high_frequencies():
    from repro.backends import solve_via
    from repro.workloads.pde import (
        hyperdiffusion_coefficients,
        hyperdiffusion_rhs,
    )

    m, n = 2, 128
    dx = 1.0 / n
    e, a, b, c, f = hyperdiffusion_coefficients(m, n, 1e-6, 0.01, dx)
    xg = np.arange(n) * dx
    # a smooth mode plus a zig-zag (Nyquist) perturbation
    u = np.sin(np.pi * xg)[None] + 0.1 * (-1.0) ** np.arange(n)[None]
    u = np.repeat(u, m, axis=0)
    u1, _ = solve_via(a, b, c, hyperdiffusion_rhs(u), e=e, f=f)
    # implicit Euler on u_t = -k u_xxxx damps the Nyquist mode hard
    # while leaving the smooth mode nearly untouched
    zigzag = lambda v: np.abs(np.diff(v[:, 2:-2], axis=1)).max()
    assert zigzag(u1) < 0.5 * zigzag(u)
    assert np.abs(u1).max() > 0.5  # the smooth bulk survives
    with pytest.raises(ValueError, match=r"must be \(M, N\)"):
        hyperdiffusion_rhs(u[0])
